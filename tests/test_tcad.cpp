#include <gtest/gtest.h>

#include <cmath>

#include "compact/device_spec.h"
#include "compact/mosfet.h"
#include "physics/units.h"
#include "tcad/device_sim.h"
#include "tcad/extract.h"

namespace st = subscale::tcad;
namespace sc = subscale::compact;
namespace sd = subscale::doping;
namespace su = subscale::units;

namespace {

/// The paper's 90nm super-V_th NFET (Table 2).
sc::DeviceSpec nfet_90() {
  return sc::make_spec_from_table(sd::Polarity::kNfet, 65, 2.10, 1.52e18,
                                  3.63e18, 1.2, 1.0);
}

/// Shared solved device (TCAD solves are the most expensive thing in the
/// test suite, so every test reuses one instance + one sweep).
st::TcadDevice& shared_device() {
  static st::TcadDevice dev(nfet_90());
  return dev;
}

const std::vector<st::IdVgPoint>& shared_sweep() {
  static const std::vector<st::IdVgPoint> sweep =
      shared_device().id_vg(0.25, 0.0, 0.45, 10);
  return sweep;
}

}  // namespace

// ---- structure --------------------------------------------------------------

TEST(DeviceStructure, MeshAndContacts) {
  const auto& dev = shared_device().structure();
  const auto& m = dev.mesh();
  EXPECT_GT(m.node_count(), 300u);
  EXPECT_TRUE(m.has_contact("gate"));
  EXPECT_TRUE(m.has_contact("source"));
  EXPECT_TRUE(m.has_contact("drain"));
  EXPECT_TRUE(m.has_contact("bulk"));
  // Gate nodes live in the oxide; source/drain/bulk in silicon.
  for (const auto idx : m.contact_nodes("gate")) {
    EXPECT_FALSE(dev.is_silicon(idx));
  }
  for (const auto idx : m.contact_nodes("source")) {
    EXPECT_TRUE(dev.is_silicon(idx));
  }
}

TEST(DeviceStructure, DopingPolarity) {
  const auto& dev = shared_device().structure();
  const auto& m = dev.mesh();
  // Source nodes: strongly n-type. Bulk nodes: p-type (well-enhanced).
  for (const auto idx : m.contact_nodes("source")) {
    EXPECT_GT(dev.net_doping()[idx], su::per_cm3(1e19));
  }
  for (const auto idx : m.contact_nodes("bulk")) {
    EXPECT_LT(dev.net_doping()[idx], -su::per_cm3(1e17));
  }
}

TEST(DeviceStructure, OhmicCarriersMassActionLaw) {
  const auto& dev = shared_device().structure();
  const auto& m = dev.mesh();
  const double ni2 = dev.ni() * dev.ni();
  // Regression for the heavy-doping cancellation bug: even at the
  // well-enhanced p-type bulk, np = ni^2 must hold to high accuracy.
  for (const auto idx : m.contact_nodes("bulk")) {
    double n = 0.0, p = 0.0;
    dev.ohmic_carriers(idx, &n, &p);
    EXPECT_GT(n, 0.0);
    EXPECT_GT(p, 0.0);
    EXPECT_NEAR(n * p / ni2, 1.0, 1e-9);
    EXPECT_NEAR(p, -dev.net_doping()[idx], 1e-3 * p);
  }
}

TEST(DeviceStructure, GateWorkFunctionOffset) {
  const auto& dev = shared_device().structure();
  const auto& m = dev.mesh();
  const auto gate_node = m.contact_nodes("gate").front();
  // n+ poly on NFET: the gate potential at V_g = 0 sits ~0.55-0.60 V
  // above intrinsic.
  const double pot = dev.contact_potential(gate_node, 0.0);
  EXPECT_GT(pot, 0.50);
  EXPECT_LT(pot, 0.65);
  // Applied bias shifts it one-for-one.
  EXPECT_NEAR(dev.contact_potential(gate_node, 0.3) - pot, 0.3, 1e-12);
}

// ---- equilibrium -----------------------------------------------------------------

TEST(DriftDiffusion, EquilibriumTerminalCurrentsVanish) {
  // The shared device was solved at equilibrium first; by now it has
  // been biased, so re-create a fresh solver for this check.
  st::DeviceStructure dev(nfet_90());
  st::DriftDiffusionSolver solver(dev);
  solver.solve_equilibrium();
  // Off currents at the paper's 90nm device are ~1e-4 A/m; equilibrium
  // residual currents must be far below that.
  EXPECT_LT(std::abs(solver.terminal_current("drain")), 1e-7);
  EXPECT_LT(std::abs(solver.terminal_current("source")), 1e-7);
  EXPECT_LT(std::abs(solver.terminal_current("bulk")), 1e-7);
}

TEST(DriftDiffusion, EquilibriumMassActionInBulk) {
  st::DeviceStructure dev(nfet_90());
  st::DriftDiffusionSolver solver(dev);
  solver.solve_equilibrium();
  const auto& m = dev.mesh();
  const double ni2 = dev.ni() * dev.ni();
  // Deep substrate node far from the junctions.
  const std::size_t i = m.x_grid().nearest_index(0.0);
  const std::size_t j = m.y_grid().nearest_index(0.8 * dev.spec().geometry.substrate_depth);
  const std::size_t idx = m.index(i, j);
  ASSERT_TRUE(dev.is_silicon(idx));
  const double np = solver.electron_density()[idx] * solver.hole_density()[idx];
  EXPECT_NEAR(np / ni2, 1.0, 0.05);
}

// ---- bias sweeps --------------------------------------------------------------------

TEST(TcadSweep, CurrentIncreasesMonotonically) {
  const auto& sweep = shared_sweep();
  for (std::size_t k = 1; k < sweep.size(); ++k) {
    EXPECT_GT(sweep[k].id, sweep[k - 1].id) << "k=" << k;
  }
}

TEST(TcadSweep, SubthresholdSlopeNearCompactModel) {
  const auto ex = st::extract_from_sweep(shared_sweep());
  const sc::CompactMosfet fet(nfet_90());
  // The from-scratch DD solver and the calibrated compact model must
  // agree on S_S within ~20 % (88-95 vs 85 mV/dec in practice).
  EXPECT_NEAR(ex.ss / fet.subthreshold_swing(), 1.0, 0.20);
  EXPECT_GT(ex.ss_r2, 0.995);  // clean exponential region
}

TEST(TcadSweep, OffCurrentInLeakageRegime) {
  const auto& sweep = shared_sweep();
  // I_off at V_gs = 0: within a few orders of the paper's 100 pA/um.
  const double ioff_pa_um = su::to_pA_per_um(sweep.front().id);
  EXPECT_GT(ioff_pa_um, 1.0);
  EXPECT_LT(ioff_pa_um, 1e5);
  // Swing spans several decades across the sweep.
  EXPECT_GT(sweep.back().id / sweep.front().id, 1e3);
}

TEST(TcadSweep, DrainBiasRaisesLeakage) {
  // DIBL: higher V_ds lowers the barrier and raises subthreshold current.
  auto& dev = shared_device();
  const double lo = dev.id_at(0.1, 0.1);
  const double hi = dev.id_at(0.1, 0.5);
  EXPECT_GT(hi, lo);
}

// ---- extraction utilities -----------------------------------------------------------

TEST(Extract, ExactOnSyntheticExponential) {
  // id = 1e-6 * 10^(vg / 0.090): S_S must extract to exactly 90 mV/dec.
  std::vector<st::IdVgPoint> sweep;
  for (int k = 0; k <= 20; ++k) {
    const double vg = 0.025 * k;
    sweep.push_back({vg, 1e-6 * std::pow(10.0, vg / 0.090)});
  }
  st::ExtractOptions opt;
  opt.vth_current = 1e-4;
  const auto ex = st::extract_from_sweep(sweep, opt);
  EXPECT_NEAR(ex.ss, 0.090, 1e-6);
  EXPECT_NEAR(ex.ss_r2, 1.0, 1e-9);
  // vth_cc: crossing of 1e-4 at vg = 0.090*log10(1e-4/1e-6) = 0.180.
  EXPECT_NEAR(ex.vth_cc, 0.180, 1e-4);
}

TEST(Extract, RejectsBadSweeps) {
  std::vector<st::IdVgPoint> tiny = {{0.0, 1e-9}, {0.1, 1e-8}};
  EXPECT_THROW(st::extract_from_sweep(tiny), std::invalid_argument);
  std::vector<st::IdVgPoint> nonmono;
  for (int k = 0; k < 8; ++k) nonmono.push_back({0.1 * k, 1e-9});
  nonmono[3].vg = nonmono[2].vg;  // not strictly ascending
  EXPECT_THROW(st::extract_from_sweep(nonmono), std::invalid_argument);
  std::vector<st::IdVgPoint> negative;
  for (int k = 0; k < 8; ++k) negative.push_back({0.1 * k, -1.0});
  EXPECT_THROW(st::extract_from_sweep(negative), std::invalid_argument);
}

TEST(Extract, DiblFromTwoSyntheticSweeps) {
  const auto make = [](double vth) {
    std::vector<st::IdVgPoint> sweep;
    for (int k = 0; k <= 20; ++k) {
      const double vg = 0.03 * k;
      sweep.push_back({vg, 1e-7 * std::pow(10.0, (vg - vth) / 0.090)});
    }
    return sweep;
  };
  st::ExtractOptions opt;
  opt.vth_current = 1e-6;
  // 40 mV of roll-off over 0.95 V of drain bias -> DIBL = 42.1 mV/V.
  const double dibl = st::extract_dibl(make(0.40), 0.05, make(0.36), 1.0, opt);
  EXPECT_NEAR(dibl, 0.04 / 0.95, 1e-6);
  EXPECT_THROW(st::extract_dibl(make(0.4), 1.0, make(0.4), 0.05, opt),
               std::invalid_argument);
}

// ---- cross-validation: TCAD reproduces the paper's S_S degradation ------------------

TEST(TcadPaperTrend, LongerGateImprovesSwing) {
  // Fig. 7's underlying mechanism: at fixed doping and feature set, a
  // longer gate improves S_S. (Gates much shorter than the node's
  // feature set punch through entirely in the literal 2-D structure, so
  // the comparison runs on the well-behaved side: 90nm vs 65nm gates.)
  st::MeshOptions coarse;
  coarse.surface_spacing = 0.6e-9;
  coarse.junction_spacing = 1.5e-9;

  st::ExtractOptions window;
  window.window_lo_decades = 0.3;
  window.window_hi_decades = 2.2;

  sc::DeviceSpec short_spec = nfet_90();  // lpoly = 65nm
  st::TcadDevice short_dev(short_spec, coarse);
  const auto short_ex =
      st::extract_from_sweep(short_dev.id_vg(0.25, 0.0, 0.40, 11), window);

  sc::DeviceSpec long_spec = nfet_90();
  long_spec.geometry.lpoly = 90e-9;  // same features, longer gate
  st::TcadDevice long_dev(long_spec, coarse);
  const auto long_ex =
      st::extract_from_sweep(long_dev.id_vg(0.25, 0.0, 0.40, 11), window);

  EXPECT_GT(short_ex.ss, long_ex.ss);
}
