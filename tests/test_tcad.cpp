#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "compact/device_spec.h"
#include "compact/mosfet.h"
#include "exec/run_context.h"
#include "mesh/mesh2d.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "physics/units.h"
#include "tcad/device_sim.h"
#include "tcad/extract.h"
#include "tcad/mesh_continuation.h"
#include "tcad/newton_dd.h"

namespace se = subscale::exec;
namespace sm = subscale::mesh;
namespace so = subscale::obs;
namespace st = subscale::tcad;
namespace sc = subscale::compact;
namespace sd = subscale::doping;
namespace su = subscale::units;

namespace {

/// The paper's 90nm super-V_th NFET (Table 2).
sc::DeviceSpec nfet_90() {
  return sc::make_spec_from_table(sd::Polarity::kNfet, 65, 2.10, 1.52e18,
                                  3.63e18, 1.2, 1.0);
}

/// Shared solved device (TCAD solves are the most expensive thing in the
/// test suite, so every test reuses one instance + one sweep).
st::TcadDevice& shared_device() {
  static st::TcadDevice dev(nfet_90());
  return dev;
}

const st::SweepResult& shared_sweep() {
  static const st::SweepResult sweep =
      shared_device().id_vg(0.25, 0.0, 0.45, 10);
  return sweep;
}

}  // namespace

// ---- structure --------------------------------------------------------------

TEST(DeviceStructure, MeshAndContacts) {
  const auto& dev = shared_device().structure();
  const auto& m = dev.mesh();
  EXPECT_GT(m.node_count(), 300u);
  EXPECT_TRUE(m.has_contact("gate"));
  EXPECT_TRUE(m.has_contact("source"));
  EXPECT_TRUE(m.has_contact("drain"));
  EXPECT_TRUE(m.has_contact("bulk"));
  // Gate nodes live in the oxide; source/drain/bulk in silicon.
  for (const auto idx : m.contact_nodes("gate")) {
    EXPECT_FALSE(dev.is_silicon(idx));
  }
  for (const auto idx : m.contact_nodes("source")) {
    EXPECT_TRUE(dev.is_silicon(idx));
  }
}

TEST(DeviceStructure, DopingPolarity) {
  const auto& dev = shared_device().structure();
  const auto& m = dev.mesh();
  // Source nodes: strongly n-type. Bulk nodes: p-type (well-enhanced).
  for (const auto idx : m.contact_nodes("source")) {
    EXPECT_GT(dev.net_doping()[idx], su::per_cm3(1e19));
  }
  for (const auto idx : m.contact_nodes("bulk")) {
    EXPECT_LT(dev.net_doping()[idx], -su::per_cm3(1e17));
  }
}

TEST(DeviceStructure, OhmicCarriersMassActionLaw) {
  const auto& dev = shared_device().structure();
  const auto& m = dev.mesh();
  const double ni2 = dev.ni() * dev.ni();
  // Regression for the heavy-doping cancellation bug: even at the
  // well-enhanced p-type bulk, np = ni^2 must hold to high accuracy.
  for (const auto idx : m.contact_nodes("bulk")) {
    double n = 0.0, p = 0.0;
    dev.ohmic_carriers(idx, &n, &p);
    EXPECT_GT(n, 0.0);
    EXPECT_GT(p, 0.0);
    EXPECT_NEAR(n * p / ni2, 1.0, 1e-9);
    EXPECT_NEAR(p, -dev.net_doping()[idx], 1e-3 * p);
  }
}

TEST(DeviceStructure, GateWorkFunctionOffset) {
  const auto& dev = shared_device().structure();
  const auto& m = dev.mesh();
  const auto gate_node = m.contact_nodes("gate").front();
  // n+ poly on NFET: the gate potential at V_g = 0 sits ~0.55-0.60 V
  // above intrinsic.
  const double pot = dev.contact_potential(gate_node, 0.0);
  EXPECT_GT(pot, 0.50);
  EXPECT_LT(pot, 0.65);
  // Applied bias shifts it one-for-one.
  EXPECT_NEAR(dev.contact_potential(gate_node, 0.3) - pot, 0.3, 1e-12);
}

// ---- equilibrium -----------------------------------------------------------------

TEST(DriftDiffusion, EquilibriumTerminalCurrentsVanish) {
  // The shared device was solved at equilibrium first; by now it has
  // been biased, so re-create a fresh solver for this check.
  st::DeviceStructure dev(nfet_90());
  st::DriftDiffusionSolver solver(dev);
  solver.solve_equilibrium();
  // Off currents at the paper's 90nm device are ~1e-4 A/m; equilibrium
  // residual currents must be far below that.
  EXPECT_LT(std::abs(solver.terminal_current("drain")), 1e-7);
  EXPECT_LT(std::abs(solver.terminal_current("source")), 1e-7);
  EXPECT_LT(std::abs(solver.terminal_current("bulk")), 1e-7);
}

TEST(DriftDiffusion, EquilibriumMassActionInBulk) {
  st::DeviceStructure dev(nfet_90());
  st::DriftDiffusionSolver solver(dev);
  solver.solve_equilibrium();
  const auto& m = dev.mesh();
  const double ni2 = dev.ni() * dev.ni();
  // Deep substrate node far from the junctions.
  const std::size_t i = m.x_grid().nearest_index(0.0);
  const std::size_t j = m.y_grid().nearest_index(0.8 * dev.spec().geometry.substrate_depth);
  const std::size_t idx = m.index(i, j);
  ASSERT_TRUE(dev.is_silicon(idx));
  const double np = solver.electron_density()[idx] * solver.hole_density()[idx];
  EXPECT_NEAR(np / ni2, 1.0, 0.05);
}

// ---- bias sweeps --------------------------------------------------------------------

TEST(TcadSweep, CurrentIncreasesMonotonically) {
  const auto& sweep = shared_sweep();
  for (std::size_t k = 1; k < sweep.size(); ++k) {
    EXPECT_GT(sweep[k].id, sweep[k - 1].id) << "k=" << k;
  }
}

TEST(TcadSweep, SubthresholdSlopeNearCompactModel) {
  const auto ex = st::extract_from_sweep(shared_sweep());
  const sc::CompactMosfet fet(nfet_90());
  // The from-scratch DD solver and the calibrated compact model must
  // agree on S_S within ~20 % (88-95 vs 85 mV/dec in practice).
  EXPECT_NEAR(ex.ss / fet.subthreshold_swing(), 1.0, 0.20);
  EXPECT_GT(ex.ss_r2, 0.995);  // clean exponential region
}

TEST(TcadSweep, OffCurrentInLeakageRegime) {
  const auto& sweep = shared_sweep().points;
  // I_off at V_gs = 0: within a few orders of the paper's 100 pA/um.
  const double ioff_pa_um = su::to_pA_per_um(sweep.front().id);
  EXPECT_GT(ioff_pa_um, 1.0);
  EXPECT_LT(ioff_pa_um, 1e5);
  // Swing spans several decades across the sweep.
  EXPECT_GT(sweep.back().id / sweep.front().id, 1e3);
}

TEST(TcadSweep, DrainBiasRaisesLeakage) {
  // DIBL: higher V_ds lowers the barrier and raises subthreshold current.
  auto& dev = shared_device();
  const double lo = dev.id_at(0.1, 0.1);
  const double hi = dev.id_at(0.1, 0.5);
  EXPECT_GT(hi, lo);
}

// ---- extraction utilities -----------------------------------------------------------

TEST(Extract, ExactOnSyntheticExponential) {
  // id = 1e-6 * 10^(vg / 0.090): S_S must extract to exactly 90 mV/dec.
  std::vector<st::IdVgPoint> sweep;
  for (int k = 0; k <= 20; ++k) {
    const double vg = 0.025 * k;
    sweep.push_back({vg, 1e-6 * std::pow(10.0, vg / 0.090)});
  }
  st::ExtractOptions opt;
  opt.vth_current = 1e-4;
  const auto ex = st::extract_from_sweep(sweep, opt);
  EXPECT_NEAR(ex.ss, 0.090, 1e-6);
  EXPECT_NEAR(ex.ss_r2, 1.0, 1e-9);
  // vth_cc: crossing of 1e-4 at vg = 0.090*log10(1e-4/1e-6) = 0.180.
  EXPECT_NEAR(ex.vth_cc, 0.180, 1e-4);
}

TEST(Extract, RejectsBadSweeps) {
  std::vector<st::IdVgPoint> tiny = {{0.0, 1e-9}, {0.1, 1e-8}};
  EXPECT_THROW(st::extract_from_sweep(tiny), std::invalid_argument);
  std::vector<st::IdVgPoint> nonmono;
  for (int k = 0; k < 8; ++k) nonmono.push_back({0.1 * k, 1e-9});
  nonmono[3].vg = nonmono[2].vg;  // not strictly ascending
  EXPECT_THROW(st::extract_from_sweep(nonmono), std::invalid_argument);
  std::vector<st::IdVgPoint> negative;
  for (int k = 0; k < 8; ++k) negative.push_back({0.1 * k, -1.0});
  EXPECT_THROW(st::extract_from_sweep(negative), std::invalid_argument);
}

TEST(Extract, DiblFromTwoSyntheticSweeps) {
  const auto make = [](double vth) {
    std::vector<st::IdVgPoint> sweep;
    for (int k = 0; k <= 20; ++k) {
      const double vg = 0.03 * k;
      sweep.push_back({vg, 1e-7 * std::pow(10.0, (vg - vth) / 0.090)});
    }
    return sweep;
  };
  st::ExtractOptions opt;
  opt.vth_current = 1e-6;
  // 40 mV of roll-off over 0.95 V of drain bias -> DIBL = 42.1 mV/V.
  const double dibl = st::extract_dibl(make(0.40), 0.05, make(0.36), 1.0, opt);
  EXPECT_NEAR(dibl, 0.04 / 0.95, 1e-6);
  EXPECT_THROW(st::extract_dibl(make(0.4), 1.0, make(0.4), 0.05, opt),
               std::invalid_argument);
}

// ---- solver resilience ----------------------------------------------------------

namespace {

/// Coarse mesh for the resilience tests (solve cost, not accuracy,
/// dominates here).
st::MeshOptions coarse_mesh() {
  st::MeshOptions mesh;
  mesh.surface_spacing = 0.6e-9;
  mesh.junction_spacing = 1.5e-9;
  return mesh;
}

/// Fault the given stage once, at gate biases in [0.18 V, 0.22 V).
st::GummelOptions faulted_options(st::SolveStage stage, long count) {
  st::GummelOptions opt;
  opt.fault.stage = stage;
  opt.fault.count = count;
  opt.fault.contact = "gate";
  opt.fault.min_bias = 0.18;
  opt.fault.max_bias = 0.22;
  return opt;
}

/// Unfaulted reference current at (vg=0.3, vd=0.25) on the coarse mesh.
double reference_id() {
  static const double id = [] {
    st::TcadDevice dev(nfet_90(), coarse_mesh());
    return dev.id_at(0.3, 0.25);
  }();
  return id;
}

}  // namespace

TEST(GummelOptions, ValidationRejectsBadFields) {
  const auto expect_invalid = [](st::GummelOptions opt, const char* field) {
    try {
      opt.validate();
      FAIL() << "expected invalid_argument for " << field;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };
  st::GummelOptions opt;
  opt.bias_step = 0.0;  // would make solve_bias ramp forever
  expect_invalid(opt, "bias_step");
  opt = {};
  opt.bias_step = -0.1;
  expect_invalid(opt, "bias_step");
  opt = {};
  opt.psi_tolerance = 0.0;
  expect_invalid(opt, "psi_tolerance");
  opt = {};
  opt.min_bias_step = 0.2;  // above bias_step
  expect_invalid(opt, "min_bias_step");
  opt = {};
  opt.damping = 1.5;
  expect_invalid(opt, "damping");
  opt = {};
  opt.retry_damping = 1.0;
  expect_invalid(opt, "retry_damping");
  opt = {};
  opt.max_iterations = 0;
  expect_invalid(opt, "max_iterations");
  opt = {};
  opt.poisson.update_tolerance = -1e-9;
  expect_invalid(opt, "poisson.update_tolerance");
  opt = {};
  opt.continuity.tau_srh = 0.0;
  expect_invalid(opt, "tau_srh");
  opt = {};
  opt.fault.stage = st::SolveStage::kPoisson;
  opt.fault.min_bias = 0.3;
  opt.fault.max_bias = 0.2;
  expect_invalid(opt, "fault");

  // The solver constructor runs the same validation.
  st::DeviceStructure dev(nfet_90(), coarse_mesh());
  st::GummelOptions bad;
  bad.bias_step = 0.0;
  EXPECT_THROW(st::DriftDiffusionSolver(dev, bad), std::invalid_argument);
}

TEST(SolverResilience, PoissonFaultRecoversByStepHalving) {
  // A forced Poisson failure at the gate=0.2V continuation point must be
  // absorbed by the retry policy (roll back, halve the step) and the
  // terminal current must match the unfaulted solve.
  st::TcadDevice dev(nfet_90(), coarse_mesh(),
                     faulted_options(st::SolveStage::kPoisson, 1));
  const double id = dev.id_at(0.3, 0.25);
  const auto& report = dev.solver().last_report();
  EXPECT_TRUE(report.converged);
  EXPECT_GE(report.retries, 1u);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_EQ(report.failures.front().stage, st::SolveStage::kPoisson);
  EXPECT_EQ(dev.solver().pending_faults(), 0);  // the fault did fire
  EXPECT_NEAR(id / reference_id(), 1.0, 1e-3);
}

TEST(SolverResilience, ContinuityFaultRecoversByStepHalving) {
  st::TcadDevice dev(nfet_90(), coarse_mesh(),
                     faulted_options(st::SolveStage::kContinuity, 1));
  const double id = dev.id_at(0.3, 0.25);
  const auto& report = dev.solver().last_report();
  EXPECT_TRUE(report.converged);
  EXPECT_GE(report.retries, 1u);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_EQ(report.failures.front().stage, st::SolveStage::kContinuity);
  EXPECT_EQ(report.failures.front().status, st::SolveStatus::kNonFinite);
  EXPECT_NEAR(id / reference_id(), 1.0, 1e-3);
}

TEST(SolverResilience, ExhaustedRetriesReportStageAndBias) {
  // An unrecoverable point (the fault never heals and the target itself
  // sits inside the fault window) must exhaust step-halving and damping,
  // report the failing stage and bias, leave the solver at the last-good
  // state — and not poison later bias points.
  st::DeviceStructure dev(nfet_90(), coarse_mesh());
  st::DriftDiffusionSolver solver(
      dev, faulted_options(st::SolveStage::kPoisson, 1'000'000'000));
  solver.solve_equilibrium();

  const auto& report = solver.try_solve_bias(0.20, 0.25);
  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.failed_stage, st::SolveStage::kPoisson);
  EXPECT_EQ(report.status, st::SolveStatus::kStalled);
  ASSERT_TRUE(report.failed_biases.count("gate"));
  EXPECT_GE(report.failed_biases.at("gate"), 0.18);
  EXPECT_LT(report.failed_biases.at("gate"), 0.22);
  EXPECT_GE(report.retries, 3u);  // halvings + damping tightenings
  // Both knobs were driven to their floors before giving up.
  const st::GummelOptions defaults;
  EXPECT_DOUBLE_EQ(report.final_bias_step, defaults.min_bias_step);
  EXPECT_DOUBLE_EQ(report.final_damping, defaults.min_damping);
  // The digest names the stage and the bias point.
  const std::string digest = report.summary();
  EXPECT_NE(digest.find("Poisson"), std::string::npos) << digest;
  EXPECT_NE(digest.find("stalled"), std::string::npos) << digest;
  EXPECT_NE(digest.find("gate"), std::string::npos) << digest;

  // State rolled back to the last converged point: currents are finite.
  EXPECT_TRUE(std::isfinite(solver.terminal_current("drain")));

  // Strict entry point: same failure, thrown with the report attached.
  try {
    solver.solve_bias(0.20, 0.25);
    FAIL() << "expected SolverError";
  } catch (const st::SolverError& e) {
    EXPECT_FALSE(e.report().converged);
    EXPECT_EQ(e.report().failed_stage, st::SolveStage::kPoisson);
  }

  // A target outside the fault window still solves from the rolled-back
  // state: one bad point does not take down the rest of the sweep.
  EXPECT_TRUE(solver.try_solve_bias(0.30, 0.25).converged);
  EXPECT_TRUE(std::isfinite(solver.terminal_current("drain")));
}

TEST(SolverResilience, SweepSkipsUnrecoverablePointAndContinues) {
  // In a 10-point sweep with a permanently faulted window around
  // vg=0.2V, only that point is lost: it is recorded in the sweep
  // report and every other point converges with a sane current.
  st::GummelOptions faulty =
      faulted_options(st::SolveStage::kPoisson, 1'000'000'000);
  faulty.fault.min_bias = 0.19;
  faulty.fault.max_bias = 0.21;
  st::TcadDevice dev(nfet_90(), coarse_mesh(), faulty);

  const st::SweepResult sweep = dev.id_vg(0.25, 0.0, 0.45, 10);
  const auto& report = sweep.report;
  EXPECT_EQ(report.attempted, 10u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NEAR(report.failures.front().vg, 0.20, 1e-12);
  EXPECT_EQ(report.failures.front().report.failed_stage,
            st::SolveStage::kPoisson);
  ASSERT_EQ(sweep.size(), 9u);
  for (std::size_t k = 1; k < sweep.size(); ++k) {
    EXPECT_GT(sweep[k].id, sweep[k - 1].id) << "k=" << k;
  }

  // Every attempted point carries an effort record; the lost one is
  // flagged, the rest converged with real solver work behind them.
  ASSERT_EQ(sweep.timings.size(), 10u);
  std::size_t converged = 0;
  for (const auto& rec : sweep.timings) {
    if (rec.converged) {
      ++converged;
      EXPECT_GT(rec.gummel_iterations, 0u);
    } else {
      EXPECT_NEAR(rec.vg, 0.20, 1e-12);
      EXPECT_GT(rec.retries, 0u);
    }
    EXPECT_GE(rec.wall_ms, 0.0);
  }
  EXPECT_EQ(converged, 9u);

  // Strict mode (RunContext) turns the same skip into a throw.
  se::RunContext strict_ctx;
  strict_ctx.strict = true;
  EXPECT_THROW(dev.id_vg(0.25, 0.0, 0.45, 10, strict_ctx), st::SolverError);
}

TEST(SolverResilience, EquilibriumFaultRecoversWithTightenedDamping) {
  // Faults at zero bias hit solve_equilibrium, whose only retry knob is
  // under-relaxation; two injected failures take two tightenings.
  st::GummelOptions opt;
  opt.fault.stage = st::SolveStage::kContinuity;
  opt.fault.count = 2;
  st::DeviceStructure dev(nfet_90(), coarse_mesh());
  st::DriftDiffusionSolver solver(dev, opt);
  solver.solve_equilibrium();
  const auto& report = solver.last_report();
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.retries, 2u);
  EXPECT_LT(report.final_damping, 1.0);

  // A fault that never heals exhausts the damping ladder and throws.
  opt.fault.count = 1'000'000'000;
  st::DriftDiffusionSolver doomed(dev, opt);
  EXPECT_THROW(doomed.solve_equilibrium(), st::SolverError);
}

// ---- cross-validation: TCAD reproduces the paper's S_S degradation ------------------

TEST(TcadPaperTrend, LongerGateImprovesSwing) {
  // Fig. 7's underlying mechanism: at fixed doping and feature set, a
  // longer gate improves S_S. (Gates much shorter than the node's
  // feature set punch through entirely in the literal 2-D structure, so
  // the comparison runs on the well-behaved side: 90nm vs 65nm gates.)
  st::MeshOptions coarse;
  coarse.surface_spacing = 0.6e-9;
  coarse.junction_spacing = 1.5e-9;

  st::ExtractOptions window;
  window.window_lo_decades = 0.3;
  window.window_hi_decades = 2.2;

  sc::DeviceSpec short_spec = nfet_90();  // lpoly = 65nm
  st::TcadDevice short_dev(short_spec, coarse);
  const auto short_ex =
      st::extract_from_sweep(short_dev.id_vg(0.25, 0.0, 0.40, 11), window);

  sc::DeviceSpec long_spec = nfet_90();
  long_spec.geometry.lpoly = 90e-9;  // same features, longer gate
  st::TcadDevice long_dev(long_spec, coarse);
  const auto long_ex =
      st::extract_from_sweep(long_dev.id_vg(0.25, 0.0, 0.40, 11), window);

  EXPECT_GT(short_ex.ss, long_ex.ss);
}

// ---- mesh-continuation prolongation properties -------------------------------

namespace {

/// Uniform tensor mesh with spacing `h` (coordinates in metres; the
/// prolongation operators are pure interpolation, so simple grids
/// exercise them fully).
sm::TensorMesh2d uniform_mesh(std::size_t nx, std::size_t ny, double h) {
  std::vector<double> xs(nx), ys(ny);
  for (std::size_t i = 0; i < nx; ++i) xs[i] = static_cast<double>(i) * h;
  for (std::size_t j = 0; j < ny; ++j) ys[j] = static_cast<double>(j) * h;
  return sm::TensorMesh2d(sm::Grid1d(std::move(xs)),
                          sm::Grid1d(std::move(ys)));
}

/// The same span at twice the resolution (contains every coarse line).
sm::TensorMesh2d refined_mesh(std::size_t nx, std::size_t ny, double h) {
  return uniform_mesh(2 * nx - 1, 2 * ny - 1, 0.5 * h);
}

}  // namespace

TEST(MeshContinuationProlongation, BilinearIsExactOnCoincidentNodes) {
  const auto coarse = uniform_mesh(5, 4, 1e-9);
  const auto fine = refined_mesh(5, 4, 1e-9);
  std::vector<double> f(coarse.node_count());
  for (std::size_t idx = 0; idx < f.size(); ++idx) {
    f[idx] = 0.25 * static_cast<double>(idx) - 3.0;
  }
  const auto pf = st::prolong_bilinear(coarse, fine, f);
  ASSERT_EQ(pf.size(), fine.node_count());
  for (std::size_t j = 0; j < coarse.ny(); ++j) {
    for (std::size_t i = 0; i < coarse.nx(); ++i) {
      // Coarse node (i, j) coincides with fine node (2i, 2j).
      EXPECT_DOUBLE_EQ(pf[fine.index(2 * i, 2 * j)], f[coarse.index(i, j)]);
    }
  }
}

TEST(MeshContinuationProlongation, BilinearIsBoundedAndMonotone) {
  const auto coarse = uniform_mesh(6, 5, 2e-9);
  const auto fine = refined_mesh(6, 5, 2e-9);
  // Monotone-in-x field with cross-row variation.
  std::vector<double> f(coarse.node_count());
  double lo = 1e300, hi = -1e300;
  for (std::size_t j = 0; j < coarse.ny(); ++j) {
    for (std::size_t i = 0; i < coarse.nx(); ++i) {
      f[coarse.index(i, j)] =
          static_cast<double>(i * i) + 0.1 * static_cast<double>(j);
      lo = std::min(lo, f[coarse.index(i, j)]);
      hi = std::max(hi, f[coarse.index(i, j)]);
    }
  }
  const auto pf = st::prolong_bilinear(coarse, fine, f);
  for (const double v : pf) {
    EXPECT_GE(v, lo);  // convex weights: no overshoot
    EXPECT_LE(v, hi);
  }
  for (std::size_t j = 0; j < fine.ny(); ++j) {
    for (std::size_t i = 0; i + 1 < fine.nx(); ++i) {
      // Per-axis monotonicity is preserved along every fine row.
      EXPECT_LE(pf[fine.index(i, j)], pf[fine.index(i + 1, j)]);
    }
  }
}

TEST(MeshContinuationProlongation, LogDensityBlendsGeometricallyAndFloors) {
  const auto coarse = uniform_mesh(3, 2, 1e-9);
  const auto fine = refined_mesh(3, 2, 1e-9);
  const double floor = 1e6;
  // Two decades-apart values and a zero (oxide) node per row.
  std::vector<double> rho(coarse.node_count());
  for (std::size_t j = 0; j < coarse.ny(); ++j) {
    rho[coarse.index(0, j)] = 1e10;
    rho[coarse.index(1, j)] = 1e20;
    rho[coarse.index(2, j)] = 0.0;
  }
  const auto pr = st::prolong_log_density(coarse, fine, rho, floor);
  ASSERT_EQ(pr.size(), fine.node_count());
  for (const double v : pr) {
    // exp(log(floor)) can land one ulp under the floor.
    EXPECT_GE(v, floor * (1.0 - 1e-12));  // zeros floored, never -inf
    EXPECT_LE(v, 1e20 * (1.0 + 1e-12));
  }
  // Midpoint between 1e10 and 1e20 blends geometrically: sqrt product.
  EXPECT_NEAR(std::log10(pr[fine.index(1, 0)]), 15.0, 1e-9);
  // A node coincident with the zeroed coarse node lands at the floor.
  EXPECT_NEAR(pr[fine.index(4, 0)], floor, 1e-9 * floor);
}

TEST(MeshContinuationProlongation, SameMeshRoundTripReconvergesImmediately) {
  // A converged state prolonged onto its own mesh is an identity: a
  // fresh solver seeded with it must certify the point in at most two
  // outer iterations (one to verify, one of slack) rather than re-run
  // the continuation ramp.
  st::TcadDevice dev(nfet_90(), coarse_mesh());
  dev.id_at(0.3, 0.25);
  const auto& m = dev.structure().mesh();
  const auto psi = st::prolong_bilinear(m, m, dev.solver().psi());
  const double floor = 1e-20 * dev.structure().ni();
  const auto n =
      st::prolong_log_density(m, m, dev.solver().electron_density(), floor);
  const auto p =
      st::prolong_log_density(m, m, dev.solver().hole_density(), floor);

  st::DriftDiffusionSolver fresh(dev.structure());
  const auto& report = fresh.try_solve_bias_seeded(0.3, 0.25, 0.0, 0.0,
                                                   psi, n, p);
  EXPECT_TRUE(report.seed_used);
  EXPECT_LE(report.total_gummel_iterations, 2u);
}

TEST(MeshContinuationProlongation, CoarseOnlyFaultFallsBackToColdPath) {
  // A coarse cascade that cannot converge must be a counted
  // no-op — the fine solve runs the ordinary cold path and produces
  // the identical answer.
  so::MetricsRegistry reg;
  se::RunContext ctx;
  ctx.metrics = &reg;
  st::GummelOptions opt;
  opt.mesh_continuation_levels = 2;
  opt.fault.stage = st::SolveStage::kPoisson;
  opt.fault.count = 1'000'000'000;
  opt.fault.coarse_only = true;
  st::TcadDevice dev(nfet_90(), coarse_mesh(), opt, ctx);
  EXPECT_DOUBLE_EQ(dev.id_at(0.3, 0.25), reference_id());
  EXPECT_GT(reg.counter(so::names::kMeshContFallbacks).value(), 0u);
}

// ---- coupled Newton: Jacobian exactness and fallback -------------------------

TEST(NewtonDd, JacobianMatchesFiniteDifferences) {
  // With velocity_saturation off the assembled Jacobian is exact (no
  // frozen-mobility approximation), so J*dx must match the central
  // difference of the residual to FD accuracy. Perturbations scale with
  // each unknown's own magnitude; agreement is judged against the
  // row-magnitude normalization the solver itself uses, so huge rows
  // cannot hide errors in small ones and vice versa.
  st::GummelOptions opt;
  opt.continuity.velocity_saturation = false;
  st::TcadDevice dev(nfet_90(), coarse_mesh(), opt);
  const auto& structure = dev.structure();
  const auto& biases = dev.solver().biases();
  const std::vector<double> psi = dev.solver().psi();
  const std::vector<double> n = dev.solver().electron_density();
  const std::vector<double> p = dev.solver().hole_density();
  const std::size_t n_nodes = structure.mesh().node_count();
  const double ni = structure.ni();

  std::vector<double> dx(3 * n_nodes);
  const double rel = 1e-6;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const double s = std::sin(0.7 * static_cast<double>(i) + 0.3);
    dx[3 * i + 0] = rel * s;                        // psi [V]
    dx[3 * i + 1] = rel * (n[i] + ni) * s;          // n [m^-3]
    dx[3 * i + 2] = rel * (p[i] + ni) * (-s);       // p [m^-3]
  }

  std::vector<double> jdx;
  st::newton_dd_jacobian_product(structure, biases, psi, n, p,
                                 opt.continuity, dx, jdx);

  const auto shifted = [&](double sign) {
    std::vector<double> sp = psi, sn = n, spp = p;
    for (std::size_t i = 0; i < n_nodes; ++i) {
      sp[i] += sign * dx[3 * i + 0];
      sn[i] += sign * dx[3 * i + 1];
      spp[i] += sign * dx[3 * i + 2];
    }
    std::vector<double> r, mag;
    st::newton_dd_residual(structure, biases, sp, sn, spp, opt.continuity, r,
                           mag);
    return r;
  };
  const std::vector<double> r_plus = shifted(1.0);
  const std::vector<double> r_minus = shifted(-1.0);
  std::vector<double> r0, row_magnitude;
  st::newton_dd_residual(structure, biases, psi, n, p, opt.continuity, r0,
                         row_magnitude);

  ASSERT_EQ(jdx.size(), 3 * n_nodes);
  ASSERT_EQ(r_plus.size(), 3 * n_nodes);
  double worst = 0.0;
  for (std::size_t r = 0; r < jdx.size(); ++r) {
    const double fd = 0.5 * (r_plus[r] - r_minus[r]);
    worst = std::max(worst, std::abs(fd - jdx[r]) / row_magnitude[r]);
  }
  // FD truncation is O(rel^2) and roundoff O(eps/rel) relative to the
  // row scale — both orders below this bound.
  EXPECT_LE(worst, 5e-7);
}

TEST(NewtonDd, InjectedNewtonFaultFallsBackToGummel) {
  // Forcing the coupled solve to fail must degrade to the seed Gummel
  // path — counted, converged, and with SolveStatus evidence in the
  // trajectory rather than a thrown error.
  so::MetricsRegistry reg;
  se::RunContext ctx;
  ctx.metrics = &reg;
  st::GummelOptions opt;
  opt.strategy = st::SolverStrategy::kNewton;
  opt.fault.stage = st::SolveStage::kNewton;
  opt.fault.count = 1;
  opt.fault.contact = "gate";
  opt.fault.min_bias = 0.18;
  opt.fault.max_bias = 0.22;
  st::TcadDevice dev(nfet_90(), coarse_mesh(), opt, ctx);
  const double id = dev.id_at(0.3, 0.25);  // ramp crosses the window
  EXPECT_TRUE(std::isfinite(id));
  EXPECT_TRUE(dev.solver().last_report().converged);
  EXPECT_GE(reg.counter(so::names::kNewtonFallbacks).value(), 1u);
  EXPECT_EQ(dev.solver().pending_faults(), 0);  // the fault did fire
  // The fallback answer is still the shared fixed point.
  EXPECT_NEAR(id, reference_id(), 1e-3 * std::abs(reference_id()));
}
