#include <gtest/gtest.h>

#include <cmath>

#include "compact/mosfet.h"
#include "compact/vth_model.h"
#include "scaling/generalized_scaling.h"
#include "scaling/subvth_strategy.h"
#include "scaling/supervth_strategy.h"
#include "scaling/technology.h"

namespace ss = subscale::scaling;
namespace sc = subscale::compact;

// ---- generalized scaling (Table 1) -------------------------------------------

TEST(GeneralizedScaling, DennardConstantField) {
  // epsilon = 1 recovers Dennard: doping x alpha, Vdd / alpha, power /a^2.
  const auto f = ss::generalized_scaling(1.4, 1.0);
  EXPECT_DOUBLE_EQ(f.physical_dimensions, 1.0 / 1.4);
  EXPECT_DOUBLE_EQ(f.channel_doping, 1.4);
  EXPECT_DOUBLE_EQ(f.supply_voltage, 1.0 / 1.4);
  EXPECT_DOUBLE_EQ(f.area, 1.0 / (1.4 * 1.4));
  EXPECT_DOUBLE_EQ(f.delay, 1.0 / 1.4);
  EXPECT_DOUBLE_EQ(f.power, 1.0 / (1.4 * 1.4));
}

TEST(GeneralizedScaling, FieldIncreaseRaisesDopingAndPower) {
  const auto f = ss::generalized_scaling(1.4, 1.2);
  EXPECT_DOUBLE_EQ(f.channel_doping, 1.2 * 1.4);
  EXPECT_DOUBLE_EQ(f.supply_voltage, 1.2 / 1.4);
  EXPECT_DOUBLE_EQ(f.power, 1.44 / 1.96);
  EXPECT_THROW(ss::generalized_scaling(0.0, 1.0), std::invalid_argument);
}

TEST(GeneralizedScaling, GenerationsCompose) {
  EXPECT_NEAR(ss::after_generations(0.7, 3), 0.343, 1e-12);
  EXPECT_DOUBLE_EQ(ss::after_generations(0.7, 0), 1.0);
  EXPECT_THROW(ss::after_generations(0.7, -1), std::invalid_argument);
}

// ---- technology nodes --------------------------------------------------------------

TEST(Technology, PaperNodeConstants) {
  const auto& nodes = ss::paper_nodes();
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes[0].name, "90nm");
  EXPECT_DOUBLE_EQ(nodes[0].lpoly_nm, 65.0);
  EXPECT_DOUBLE_EQ(nodes[0].tox_nm, 2.10);
  EXPECT_DOUBLE_EQ(nodes[0].ileak_max_pa_um, 100.0);
  EXPECT_EQ(nodes[3].name, "32nm");
  EXPECT_DOUBLE_EQ(nodes[3].lpoly_nm, 22.0);
  // L_poly shrinks 30 %/gen; T_ox 10 %/gen; leakage grows 25 %/gen.
  for (int g = 1; g < 4; ++g) {
    EXPECT_NEAR(nodes[g].lpoly_nm / nodes[g - 1].lpoly_nm, 0.7, 0.02) << g;
    EXPECT_NEAR(nodes[g].tox_nm / nodes[g - 1].tox_nm, 0.9, 0.01) << g;
    EXPECT_NEAR(nodes[g].ileak_max_pa_um / nodes[g - 1].ileak_max_pa_um,
                1.25, 1e-9)
        << g;
  }
}

TEST(Technology, LookupAndExtrapolation) {
  EXPECT_EQ(ss::node_by_name("45nm").generation, 2);
  EXPECT_THROW(ss::node_by_name("28nm"), std::invalid_argument);
  const auto n22 = ss::extrapolate_node(4);
  EXPECT_EQ(n22.name, "22nm");
  EXPECT_NEAR(n22.lpoly_nm, 65.0 * std::pow(0.7, 4), 1e-9);
  EXPECT_NEAR(n22.ileak_max_pa_um, 100.0 * std::pow(1.25, 4), 1e-9);
  // First four match the canonical table.
  EXPECT_EQ(ss::extrapolate_node(2).name, "45nm");
}

TEST(Technology, MakeNodeSpecValidates) {
  const auto& n90 = ss::paper_nodes()[0];
  const auto spec = ss::make_node_spec(
      n90, 80.0, {.nsub = 1.7e24, .np_halo = 5e23, .nsd = 1e26}, 1.0);
  EXPECT_NEAR(spec.geometry.lpoly, 80e-9, 1e-15);
  EXPECT_DOUBLE_EQ(spec.geometry.feature_shrink, 1.0);
}

// ---- super-V_th strategy (Fig. 1c / Table 2) -------------------------------------

TEST(SuperVth, LeakageConstraintActiveAtEveryNode) {
  for (const auto& d : ss::supervth_roadmap()) {
    EXPECT_NEAR(d.ioff_pa_um / d.node.ileak_max_pa_um, 1.0, 0.02)
        << d.node.name;
  }
}

TEST(SuperVth, DopingGrowsWithScaling) {
  const auto roadmap = ss::supervth_roadmap();
  for (std::size_t i = 1; i < roadmap.size(); ++i) {
    EXPECT_GT(roadmap[i].nsub_cm3, roadmap[i - 1].nsub_cm3);
    EXPECT_GT(roadmap[i].nhalo_net_cm3, roadmap[i - 1].nhalo_net_cm3);
  }
  // Table 2 ballpark: N_sub within 30 %, N_halo within 20 %.
  const double paper_nsub[] = {1.52e18, 1.97e18, 2.52e18, 3.31e18};
  const double paper_nhalo[] = {3.63e18, 5.17e18, 7.83e18, 12.0e18};
  for (std::size_t i = 0; i < roadmap.size(); ++i) {
    EXPECT_NEAR(roadmap[i].nsub_cm3 / paper_nsub[i], 1.0, 0.30) << i;
    EXPECT_NEAR(roadmap[i].nhalo_net_cm3 / paper_nhalo[i], 1.0, 0.20) << i;
  }
}

TEST(SuperVth, VthSatTrendMatchesTable2) {
  const auto roadmap = ss::supervth_roadmap();
  const double paper_vth[] = {403.0, 420.0, 438.0, 461.0};
  for (std::size_t i = 0; i < roadmap.size(); ++i) {
    EXPECT_NEAR(roadmap[i].vth_sat_mv / paper_vth[i], 1.0, 0.08)
        << roadmap[i].node.name;
  }
  // Monotone increase (the paper's key observation that V_th RISES).
  for (std::size_t i = 1; i < roadmap.size(); ++i) {
    EXPECT_GT(roadmap[i].vth_sat_mv, roadmap[i - 1].vth_sat_mv);
  }
}

TEST(SuperVth, SwingDegradesMonotonically) {
  const auto roadmap = ss::supervth_roadmap();
  for (std::size_t i = 1; i < roadmap.size(); ++i) {
    EXPECT_GT(roadmap[i].ss_mv_dec, roadmap[i - 1].ss_mv_dec);
  }
  const double total =
      roadmap.back().ss_mv_dec / roadmap.front().ss_mv_dec - 1.0;
  EXPECT_GT(total, 0.08);  // paper: +11 %
  EXPECT_LT(total, 0.22);
}

TEST(SuperVth, IntrinsicDelayImprovesWithScaling) {
  // Paper Table 2: C_g V_dd / I_on falls 1.3 -> 0.62 ps. Our absolute
  // values differ (simplified transport) but the direction must hold
  // over the roadmap.
  const auto roadmap = ss::supervth_roadmap();
  EXPECT_LT(roadmap.back().tau_ps, roadmap.front().tau_ps);
}

// ---- sub-V_th strategy (Table 3) ------------------------------------------------------

TEST(SubVth, IoffHeldConstant) {
  for (const auto& d : ss::subvth_roadmap()) {
    EXPECT_NEAR(d.device.ioff_pa_um, 100.0, 2.0) << d.device.node.name;
  }
}

TEST(SubVth, OptimalGateLengthMatchesTable3) {
  const auto roadmap = ss::subvth_roadmap();
  const double paper_lpoly[] = {95.0, 75.0, 60.0, 45.0};
  for (std::size_t i = 0; i < roadmap.size(); ++i) {
    EXPECT_NEAR(roadmap[i].lpoly_opt_nm / paper_lpoly[i], 1.0, 0.12)
        << roadmap[i].device.node.name;
    // Longer than the super-V_th minimum gate at the same node.
    EXPECT_GT(roadmap[i].lpoly_opt_nm, roadmap[i].device.node.lpoly_nm);
  }
}

TEST(SubVth, GateLengthScalesSlowerThanThirtyPercent) {
  const auto roadmap = ss::subvth_roadmap();
  for (std::size_t i = 1; i < roadmap.size(); ++i) {
    const double ratio =
        roadmap[i].lpoly_opt_nm / roadmap[i - 1].lpoly_opt_nm;
    EXPECT_GT(ratio, 0.70) << "gen " << i;  // slower than super-V_th's 0.7
    EXPECT_LT(ratio, 0.95) << "gen " << i;  // but still scaling down
  }
}

TEST(SubVth, SwingStaysNearEightyMvPerDec) {
  const auto roadmap = ss::subvth_roadmap();
  double lo = 1e9, hi = 0.0;
  for (const auto& d : roadmap) {
    EXPECT_NEAR(d.device.ss_mv_dec, 80.0, 3.0) << d.device.node.name;
    lo = std::min(lo, d.device.ss_mv_dec);
    hi = std::max(hi, d.device.ss_mv_dec);
  }
  // Paper: varies by only 1.2 mV/dec; allow up to 3.
  EXPECT_LT(hi - lo, 3.0);
}

TEST(SubVth, EnergyAndDelayFactorsFall) {
  const auto roadmap = ss::subvth_roadmap();
  const double paper_efac[] = {1.0, 0.80, 0.65, 0.51};
  for (std::size_t i = 1; i < roadmap.size(); ++i) {
    const double e_norm =
        roadmap[i].energy_factor_raw / roadmap[0].energy_factor_raw;
    EXPECT_LT(e_norm, 1.0);
    EXPECT_NEAR(e_norm / paper_efac[i], 1.0, 0.25) << i;
    const double d_norm =
        roadmap[i].delay_factor_raw / roadmap[0].delay_factor_raw;
    EXPECT_LT(d_norm, 1.0);
  }
}

TEST(SubVth, DopingCoOptimizationBeatsNaiveLengthening) {
  // Paper Fig. 7's message: at a long gate, re-optimized doping yields a
  // better S_S than keeping the short-gate doping profile fixed.
  const auto& n45 = ss::node_by_name("45nm");
  const auto super_dev = ss::design_supervth_device(n45);
  const double lpoly_long = 60.0;
  // Fixed doping, lengthened gate.
  const auto fixed_spec =
      ss::make_node_spec(n45, lpoly_long, super_dev.spec.levels, 0.3);
  const sc::CompactMosfet fixed_fet(fixed_spec);
  // Co-optimized doping at the same gate length.
  const auto opt_spec = ss::optimize_subvth_doping(n45, lpoly_long);
  const sc::CompactMosfet opt_fet(opt_spec);
  EXPECT_LT(opt_fet.subthreshold_swing(), fixed_fet.subthreshold_swing());
}

TEST(SubVth, FlatRollOffSplit) {
  // The substrate/halo split must satisfy dV_halo ~ dV_SCE at the design
  // point (the paper's well-optimized-device condition).
  const auto& n90 = ss::node_by_name("90nm");
  const auto spec = ss::optimize_subvth_doping(n90, 90.0);
  const auto c =
      sc::threshold_components(spec, sc::paper_calibration(), 0.3);
  EXPECT_NEAR(c.dvth_halo / c.dvth_sce, 1.0, 0.10);
}

// ---- parameterized: strategy comparison per node -----------------------------------------

class NodeComparison : public ::testing::TestWithParam<int> {};

TEST_P(NodeComparison, SubVthDeviceHasBetterSwing) {
  const int g = GetParam();
  const auto& node = ss::paper_nodes()[static_cast<std::size_t>(g)];
  const auto super_dev = ss::design_supervth_device(node);
  const auto sub_dev = ss::design_subvth_device(node);
  EXPECT_LT(sub_dev.device.ss_mv_dec, super_dev.ss_mv_dec) << node.name;
}

TEST_P(NodeComparison, SubVthAdvantageGrowsFromTheSwingGap) {
  const int g = GetParam();
  const auto& node = ss::paper_nodes()[static_cast<std::size_t>(g)];
  const auto sub_dev = ss::design_subvth_device(node);
  // The energy factor of the designed device must be no worse than that
  // of the super-V_th gate length with co-optimized doping (it is the
  // minimizer over gate length).
  const auto at_min_gate =
      ss::optimize_subvth_doping(node, node.lpoly_nm);
  EXPECT_LE(sub_dev.energy_factor_raw,
            ss::energy_factor(at_min_gate) * (1.0 + 1e-6))
      << node.name;
}

INSTANTIATE_TEST_SUITE_P(Nodes, NodeComparison, ::testing::Values(0, 1, 2, 3));
