#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "perfdb/record.h"
#include "perfdb/rollup.h"
#include "perfdb/store.h"

namespace fs = std::filesystem;
namespace pdb = subscale::perfdb;

namespace {

struct TempDir {
  fs::path path;
  TempDir() {
    static int seq = 0;
    path = fs::temp_directory_path() /
           ("subscale-test-perfdb-" + std::to_string(::getpid()) + "-" +
            std::to_string(seq++));
    fs::remove_all(path);
    // Created lazily by PerfDb::append — deliberately NOT made here, so
    // the store's create-on-first-append path is what the tests cover.
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

pdb::PerfRecord make_record(std::uint64_t ts, double iterations,
                            double wall_ms = 100.0,
                            bool interrupted = false) {
  pdb::PerfRecord r;
  r.bench = "trend_bench";
  r.card = "paper_bulk_lstp";
  r.rev = "rev" + std::to_string(ts);
  r.ts = ts;
  r.shape_ok = true;
  r.interrupted = interrupted;
  r.wall_ms = wall_ms;
  r.threads = 4;
  r.metrics.emplace_back("ioff_pa_um", 12.5);
  r.obs.emplace_back("tcad.gummel.outer_iterations", iterations);
  r.obs.emplace_back("linalg.bicgstab.iterations", 2.0 * iterations);
  r.obs.emplace_back("cache.hit", 7.0);  // exempt family
  return r;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

// ---------------------------------------------------------------- record

TEST(PerfRecord, LineRoundTripIsByteFixedPoint) {
  const pdb::PerfRecord original = make_record(1700000000, 42.0);
  const std::string line = pdb::record_to_line(original);

  pdb::PerfRecord parsed;
  std::string error;
  ASSERT_TRUE(pdb::parse_record_line(line, parsed, &error)) << error;
  EXPECT_EQ(parsed.bench, original.bench);
  EXPECT_EQ(parsed.card, original.card);
  EXPECT_EQ(parsed.rev, original.rev);
  EXPECT_EQ(parsed.ts, original.ts);
  EXPECT_EQ(parsed.shape_ok, original.shape_ok);
  EXPECT_EQ(parsed.interrupted, original.interrupted);
  EXPECT_DOUBLE_EQ(parsed.wall_ms, original.wall_ms);
  EXPECT_EQ(parsed.threads, original.threads);

  // Parse -> render reproduces the exact bytes (sorted sub-objects make
  // the rendering canonical).
  EXPECT_EQ(pdb::record_to_line(parsed), line);
}

TEST(PerfRecord, LineIsSingleCompactLine) {
  const std::string line = pdb::record_to_line(make_record(1, 1.0));
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"perfdb\": \"subscale.perfdb.v1\""),
            std::string::npos);
  EXPECT_NE(line.find("\"checksum\": \""), std::string::npos);
}

TEST(PerfRecord, ChecksumDetectsBitFlip) {
  std::string line = pdb::record_to_line(make_record(1700000000, 42.0));
  // Flip one digit of a numeric value (the ts), keeping valid JSON.
  const std::size_t pos = line.find("1700000000");
  ASSERT_NE(pos, std::string::npos);
  line[pos] = '2';

  pdb::PerfRecord parsed;
  std::string error;
  EXPECT_FALSE(pdb::parse_record_line(line, parsed, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST(PerfRecord, RejectsMissingChecksumAndWrongVersion) {
  pdb::PerfRecord parsed;
  EXPECT_FALSE(pdb::parse_record_line("{\"perfdb\": \"x\"}", parsed));
  EXPECT_FALSE(pdb::parse_record_line("not json at all", parsed));

  // A well-checksummed line of another version still fails closed.
  std::string line = pdb::record_to_line(make_record(1, 1.0));
  const std::string from = "subscale.perfdb.v1";
  line.replace(line.find(from), from.size(), "subscale.perfdb.v9");
  EXPECT_FALSE(pdb::parse_record_line(line, parsed));
}

TEST(PerfRecord, FindLooksUpWallObsAndMetrics) {
  const pdb::PerfRecord r = make_record(1, 42.0, 321.0);
  double v = 0.0;
  EXPECT_TRUE(r.find("wall_ms", v));
  EXPECT_DOUBLE_EQ(v, 321.0);
  EXPECT_TRUE(r.find("tcad.gummel.outer_iterations", v));
  EXPECT_DOUBLE_EQ(v, 42.0);
  EXPECT_TRUE(r.find("ioff_pa_um", v));
  EXPECT_DOUBLE_EQ(v, 12.5);
  EXPECT_FALSE(r.find("no.such.key", v));
}

TEST(PerfRecord, BuildsFromBenchJson) {
  const std::string bench_json = R"({
  "bench": "table2_supervth",
  "card": "paper_bulk_lstp",
  "shape_ok": true,
  "wall_ms": 1234.5,
  "threads": 8,
  "metrics": {
    "ioff_32nm_pa_um": 195.3
  },
  "obs": {
    "tcad.gummel.outer_iterations": 900,
    "tcad.sweep.point_ms.sum": 55.5
  }
})";
  pdb::PerfRecord r;
  std::string error;
  ASSERT_TRUE(pdb::record_from_bench_json(bench_json, r, &error)) << error;
  EXPECT_EQ(r.bench, "table2_supervth");
  EXPECT_EQ(r.card, "paper_bulk_lstp");
  EXPECT_TRUE(r.shape_ok);
  EXPECT_FALSE(r.interrupted);
  EXPECT_DOUBLE_EQ(r.wall_ms, 1234.5);
  EXPECT_EQ(r.threads, 8u);
  // ts/rev are the caller's to stamp: BENCH documents do not carry them.
  EXPECT_EQ(r.ts, 0u);
  EXPECT_TRUE(r.rev.empty());
  double v = 0.0;
  EXPECT_TRUE(r.find("tcad.gummel.outer_iterations", v));
  EXPECT_DOUBLE_EQ(v, 900.0);

  pdb::PerfRecord bad;
  EXPECT_FALSE(
      pdb::record_from_bench_json("{\"wall_ms\": 1}", bad));  // bench-less
}

TEST(PerfRecord, BenchJsonInterruptedFlagSurvives) {
  const std::string bench_json = R"({
  "bench": "b",
  "card": "c",
  "shape_ok": false,
  "interrupted": true,
  "wall_ms": 7.0,
  "threads": 1,
  "metrics": {},
  "obs": {}
})";
  pdb::PerfRecord r;
  ASSERT_TRUE(pdb::record_from_bench_json(bench_json, r));
  EXPECT_TRUE(r.interrupted);
}

// ----------------------------------------------------------------- store

TEST(PerfDb, AppendThenLoadPreservesOrder) {
  TempDir dir;
  pdb::PerfDb db(dir.str());
  ASSERT_TRUE(db.append(make_record(100, 10.0)));
  ASSERT_TRUE(db.append(make_record(200, 11.0)));
  ASSERT_TRUE(db.append(make_record(300, 12.0)));

  pdb::PerfDb::LoadStats stats;
  const std::vector<pdb::PerfRecord> history =
      db.load("trend_bench", &stats);
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(stats.total_lines, 3u);
  EXPECT_EQ(stats.loaded, 3u);
  EXPECT_EQ(stats.corrupt, 0u);
  EXPECT_EQ(history[0].ts, 100u);
  EXPECT_EQ(history[2].ts, 300u);

  const std::vector<std::string> benches = db.benches();
  ASSERT_EQ(benches.size(), 1u);
  EXPECT_EQ(benches[0], "trend_bench");
}

TEST(PerfDb, MissingFileIsEmptyHistory) {
  TempDir dir;
  pdb::PerfDb db(dir.str());
  pdb::PerfDb::LoadStats stats;
  EXPECT_TRUE(db.load("never_ran", &stats).empty());
  EXPECT_EQ(stats.total_lines, 0u);
  EXPECT_TRUE(db.benches().empty());
}

TEST(PerfDb, RejectsEmptyBenchNameAndSanitizesPath) {
  TempDir dir;
  pdb::PerfDb db(dir.str());
  pdb::PerfRecord r = make_record(1, 1.0);
  r.bench.clear();
  EXPECT_FALSE(db.append(r));

  // A hostile bench name cannot escape the store directory.
  const std::string path = db.path_for("../../etc/passwd");
  EXPECT_EQ(path.find(".."), std::string::npos);
  EXPECT_EQ(path.rfind(dir.str(), 0), 0u);
}

TEST(PerfDb, CorruptLineSkipsAndCounts) {
  TempDir dir;
  pdb::PerfDb db(dir.str());
  ASSERT_TRUE(db.append(make_record(100, 10.0)));
  ASSERT_TRUE(db.append(make_record(200, 11.0)));

  // Corrupt the FIRST line in place (torn write, bit rot, ...).
  const std::string path = db.path_for("trend_bench");
  std::string text = read_file(path);
  const std::size_t newline = text.find('\n');
  ASSERT_NE(newline, std::string::npos);
  text[newline / 2] = '#';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  }

  pdb::PerfDb::LoadStats stats;
  const std::vector<pdb::PerfRecord> history =
      db.load("trend_bench", &stats);
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].ts, 200u);  // the intact record survives
  EXPECT_EQ(stats.total_lines, 2u);
  EXPECT_EQ(stats.corrupt, 1u);
}

TEST(PerfDb, GarbageTailDoesNotPoisonEarlierRecords) {
  TempDir dir;
  pdb::PerfDb db(dir.str());
  ASSERT_TRUE(db.append(make_record(100, 10.0)));
  {
    std::ofstream out(db.path_for("trend_bench"),
                      std::ios::binary | std::ios::app);
    out << "{\"perfdb\": \"subscale.perfdb.v1\", torn";  // no newline
  }
  // The next append must still land on its own line.
  ASSERT_TRUE(db.append(make_record(200, 11.0)));

  pdb::PerfDb::LoadStats stats;
  const std::vector<pdb::PerfRecord> history =
      db.load("trend_bench", &stats);
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(stats.corrupt, 1u);
  EXPECT_EQ(history[1].ts, 200u);
}

TEST(PerfDb, InterruptedRecordsExcludedByDefault) {
  TempDir dir;
  pdb::PerfDb db(dir.str());
  ASSERT_TRUE(db.append(make_record(100, 10.0)));
  ASSERT_TRUE(
      db.append(make_record(200, 3.0, 5.0, /*interrupted=*/true)));
  ASSERT_TRUE(db.append(make_record(300, 11.0)));

  pdb::PerfDb::LoadStats stats;
  const std::vector<pdb::PerfRecord> history =
      db.load("trend_bench", &stats);
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(stats.interrupted, 1u);
  EXPECT_EQ(history[0].ts, 100u);
  EXPECT_EQ(history[1].ts, 300u);

  const std::vector<pdb::PerfRecord> all =
      db.load("trend_bench", nullptr, /*include_interrupted=*/true);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_TRUE(all[1].interrupted);
}

// ---------------------------------------------------------------- rollup

TEST(Rollup, WindowStatsAndMedian) {
  const std::vector<double> values = {4.0, 1.0, 3.0, 2.0};
  const pdb::WindowStats s = pdb::window_stats(values);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);  // even n: midpoint of 2 and 3
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);

  EXPECT_DOUBLE_EQ(pdb::median_of({5.0, 1.0, 9.0}), 5.0);
  EXPECT_DOUBLE_EQ(pdb::median_of({}), 0.0);
}

TEST(Rollup, MetricSeriesSkipsRecordsLackingKey) {
  std::vector<pdb::PerfRecord> history = {make_record(1, 10.0),
                                          make_record(2, 11.0)};
  history[1].obs.clear();  // second record lost its obs block
  const std::vector<double> series =
      pdb::metric_series(history, "tcad.gummel.outer_iterations");
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0], 10.0);

  const std::vector<double> walls = pdb::metric_series(history, "wall_ms");
  EXPECT_EQ(walls.size(), 2u);
}

TEST(Rollup, RobustTrendFitsSlopeAndShrugsOffOutlier) {
  // Perfect line: y = 5 + 2x.
  const pdb::TrendFit clean =
      pdb::robust_trend({5.0, 7.0, 9.0, 11.0, 13.0});
  ASSERT_TRUE(clean.ok);
  EXPECT_NEAR(clean.slope, 2.0, 1e-12);
  EXPECT_NEAR(clean.intercept, 5.0, 1e-12);

  // One wild outlier cannot swing the Theil–Sen slope the way least
  // squares would (LSQ slope here would be ~ -15).
  const pdb::TrendFit robust =
      pdb::robust_trend({5.0, 7.0, 200.0, 11.0, 13.0});
  ASSERT_TRUE(robust.ok);
  EXPECT_NEAR(robust.slope, 2.0, 1.0);

  EXPECT_FALSE(pdb::robust_trend({1.0}).ok);
  EXPECT_FALSE(pdb::robust_trend({}).ok);
}

TEST(TrendGate, CleanHistoryPasses) {
  std::vector<pdb::PerfRecord> history;
  for (int i = 0; i < 5; ++i) {
    history.push_back(make_record(100 + i, 100.0));
  }
  const pdb::TrendReport report = pdb::trend_gate(history);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.records, 5u);
  EXPECT_GT(report.compared, 0u);
  EXPECT_EQ(report.regressions, 0u);
}

TEST(TrendGate, FewerThanTwoRecordsGatesNothing) {
  EXPECT_TRUE(pdb::trend_gate({}).ok());
  EXPECT_TRUE(pdb::trend_gate({make_record(1, 100.0)}).ok());
  EXPECT_EQ(pdb::trend_gate({make_record(1, 100.0)}).compared, 0u);
}

TEST(TrendGate, FiftyPercentDriftTrips) {
  std::vector<pdb::PerfRecord> history = {
      make_record(1, 100.0), make_record(2, 100.0), make_record(3, 100.0),
      make_record(4, 150.0)};
  const pdb::TrendReport report = pdb::trend_gate(history);
  EXPECT_FALSE(report.ok());
  bool found = false;
  for (const pdb::MetricTrend& m : report.metrics) {
    if (m.key == "tcad.gummel.outer_iterations") {
      found = true;
      EXPECT_TRUE(m.regressed);
      EXPECT_FALSE(m.missing);
      EXPECT_DOUBLE_EQ(m.baseline, 100.0);
      EXPECT_DOUBLE_EQ(m.newest, 150.0);
      EXPECT_NEAR(m.change, 0.5, 1e-12);
    }
  }
  EXPECT_TRUE(found);
}

TEST(TrendGate, SlowDriftPairwiseMissesButRollingBaselineCatches) {
  // +3 per run: every pairwise step is 3% (< 10% tolerance), but the
  // newest run is ~13% over the rolling window median.
  std::vector<pdb::PerfRecord> history;
  for (int i = 0; i <= 10; ++i) {
    history.push_back(make_record(100 + i, 100.0 + 3.0 * i));
  }
  pdb::TrendGateOptions options;
  options.window = 8;
  const pdb::TrendReport report = pdb::trend_gate(history, options);
  EXPECT_FALSE(report.ok());
}

TEST(TrendGate, MissingKeyInNewestFails) {
  std::vector<pdb::PerfRecord> history = {
      make_record(1, 100.0), make_record(2, 100.0), make_record(3, 100.0)};
  // Newest record dropped the gummel counter entirely (schema drift).
  pdb::PerfRecord newest = make_record(4, 100.0);
  newest.obs.erase(newest.obs.begin());  // outer_iterations
  history.push_back(newest);

  const pdb::TrendReport report = pdb::trend_gate(history);
  EXPECT_FALSE(report.ok());
  bool saw_missing = false;
  for (const pdb::MetricTrend& m : report.metrics) {
    if (m.key == "tcad.gummel.outer_iterations") {
      saw_missing = m.missing && m.regressed;
    }
  }
  EXPECT_TRUE(saw_missing);
}

TEST(TrendGate, AppearsFromZeroTrips) {
  std::vector<pdb::PerfRecord> history;
  for (int i = 0; i < 3; ++i) {
    pdb::PerfRecord r = make_record(100 + i, 100.0);
    r.obs.emplace_back("tcad.gummel.failed_solves", 0.0);
    history.push_back(r);
  }
  pdb::PerfRecord newest = make_record(200, 100.0);
  newest.obs.emplace_back("tcad.gummel.failed_solves", 5.0);
  history.push_back(newest);

  const pdb::TrendReport report = pdb::trend_gate(history);
  EXPECT_FALSE(report.ok());
}

TEST(TrendGate, ExemptFamiliesNeverGate) {
  // cache.* is exempt by schema policy: a 10x jump must not trip.
  std::vector<pdb::PerfRecord> history = {make_record(1, 100.0),
                                          make_record(2, 100.0)};
  history.back().obs[2].second = 70.0;  // cache.hit: 7 -> 70
  const pdb::TrendReport report = pdb::trend_gate(history);
  EXPECT_TRUE(report.ok());
  for (const pdb::MetricTrend& m : report.metrics) {
    EXPECT_NE(m.key.rfind("cache.", 0), 0u) << m.key;
  }
}

TEST(TrendGate, PerMetricToleranceOverride) {
  std::vector<pdb::PerfRecord> history = {
      make_record(1, 100.0), make_record(2, 100.0), make_record(3, 120.0)};
  // +20% trips the default 10%...
  EXPECT_FALSE(pdb::trend_gate(history).ok());
  // ...but a per-metric override loosens exactly that key. The bicgstab
  // series scales with the gummel one in make_record, so it needs its
  // own override too.
  pdb::TrendGateOptions options;
  options.tolerance_overrides.emplace_back(
      "tcad.gummel.outer_iterations", 0.5);
  options.tolerance_overrides.emplace_back(
      "linalg.bicgstab.iterations", 0.5);
  EXPECT_TRUE(pdb::trend_gate(history, options).ok());
}

TEST(TrendGate, WallClockGatesOnlyWhenOptedIn) {
  std::vector<pdb::PerfRecord> history = {
      make_record(1, 100.0, 100.0), make_record(2, 100.0, 100.0),
      make_record(3, 100.0, 500.0)};  // wall time 5x, effort flat
  EXPECT_TRUE(pdb::trend_gate(history).ok());

  pdb::TrendGateOptions options;
  options.gate_wall_ms = true;
  const pdb::TrendReport report = pdb::trend_gate(history, options);
  EXPECT_FALSE(report.ok());
  bool wall_gated = false;
  for (const pdb::MetricTrend& m : report.metrics) {
    if (m.key == "wall_ms") wall_gated = m.regressed;
  }
  EXPECT_TRUE(wall_gated);
}

TEST(TrendGate, SlopeToleranceCatchesSubToleranceCreep) {
  // +2 per run from 100: newest vs median-of-window stays near the 10%
  // line, but the fitted slope accumulated over the window is clear.
  std::vector<pdb::PerfRecord> history;
  for (int i = 0; i < 6; ++i) {
    history.push_back(make_record(100 + i, 100.0 + 2.0 * i));
  }
  pdb::TrendGateOptions plain;
  plain.window = 4;
  EXPECT_TRUE(pdb::trend_gate(history, plain).ok());

  pdb::TrendGateOptions sloped = plain;
  sloped.slope_tolerance = 0.05;  // 2/run * 4 runs = 8% of baseline > 5%
  EXPECT_FALSE(pdb::trend_gate(history, sloped).ok());
}

// The SIGTERM-flush scenario end to end: a partial record lands in the
// store (bench/common.h appends it stamped "interrupted": true), and the
// default load path keeps it out of every baseline — its half-counted
// counters would otherwise make the NEXT full run look like a huge
// regression against a baseline dragged down by the partial one.
TEST(TrendGate, InterruptedRecordNeverPoisonsTrendWindow) {
  TempDir dir;
  pdb::PerfDb db(dir.str());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(db.append(make_record(100 + i, 100.0)));
  }
  // SIGTERM mid-run: counters stopped at a fraction of a full run.
  ASSERT_TRUE(
      db.append(make_record(200, 12.0, 3.0, /*interrupted=*/true)));
  // The next FULL run, unchanged effort.
  ASSERT_TRUE(db.append(make_record(300, 100.0)));

  const std::vector<pdb::PerfRecord> history = db.load("trend_bench");
  ASSERT_EQ(history.size(), 5u);  // the partial one is gone
  for (const pdb::PerfRecord& r : history) {
    EXPECT_FALSE(r.interrupted);
  }
  EXPECT_TRUE(pdb::trend_gate(history).ok());

  // And if the INTERRUPTED run had been the last thing appended, the
  // default gate input still ends on the last full run — a partial
  // record can neither be the newest under test nor sit in a baseline.
  ASSERT_TRUE(
      db.append(make_record(400, 15.0, 4.0, /*interrupted=*/true)));
  const std::vector<pdb::PerfRecord> again = db.load("trend_bench");
  ASSERT_EQ(again.size(), 5u);
  EXPECT_EQ(again.back().ts, 300u);
  EXPECT_TRUE(pdb::trend_gate(again).ok());
}
