// End-to-end orchestrator tests (slow tier: real TCAD solves, forked
// worker processes, chaos kills). Everything runs on the cheapest real
// configuration — one or two nodes, coarse mesh, 3-4 point sweeps — so
// the suite exercises fork/lease/reassign/resume mechanics, not solver
// throughput.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "cache/lease.h"
#include "cache/solve_cache.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "orch/orchestrator.h"

namespace fs = std::filesystem;
namespace sca = subscale::cache;
namespace so = subscale::orch;
namespace obs = subscale::obs;

namespace {

struct TempDir {
  fs::path path;
  TempDir() {
    static int seq = 0;
    path = fs::temp_directory_path() /
           ("subscale-test-orchstudy-" + std::to_string(::getpid()) + "-" +
            std::to_string(seq++));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

/// The cheapest real study: the two largest nodes, coarse mesh, 3-point
/// sweeps at one drain bias.
so::Manifest tiny_manifest() {
  so::StudySpec spec;
  spec.nodes = {0, 1};
  spec.points = 3;
  spec.mesh.surface_spacing = 0.6e-9;
  spec.mesh.junction_spacing = 1.5e-9;
  return so::build_manifest(spec);
}

so::OrchOptions options_in(const TempDir& dir, std::size_t workers) {
  so::OrchOptions options;
  options.workers = workers;
  options.study_dir = dir.str() + "/study";
  options.cache_dir = dir.str() + "/cache";
  options.lease_timeout_seconds = 1.0;
  options.deadline_seconds = 120.0;
  return options;
}

}  // namespace

TEST(OrchStudy, SerialModeSolvesAndMergesEveryUnit) {
  TempDir dir;
  obs::MetricsRegistry registry;
  so::OrchOptions options = options_in(dir, 0);
  options.run.metrics = &registry;
  const so::Manifest manifest = tiny_manifest();
  const so::StudyResult result = so::run_study(manifest, options);
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.report.units_total, manifest.units.size());
  EXPECT_EQ(result.report.completed, manifest.units.size());
  EXPECT_EQ(result.report.claimed, manifest.units.size());
  EXPECT_EQ(result.report.poisoned, 0u);
  EXPECT_EQ(registry.counter(obs::names::kOrchCompleted).value(),
            manifest.units.size());
  for (const so::UnitOutcome& o : result.outcomes) {
    EXPECT_TRUE(o.completed);
    EXPECT_TRUE(o.result.usable());
  }
}

TEST(OrchStudy, ResumeSolvesOnlyTheRemainder) {
  TempDir dir;
  const so::Manifest manifest = tiny_manifest();

  // Pre-publish the first unit by running a one-unit sub-manifest.
  so::Manifest first = manifest;
  first.units.resize(1);
  so::run_study(first, options_in(dir, 0));

  // The full run finds it in the store and solves only the remainder.
  obs::MetricsRegistry registry;
  so::OrchOptions options = options_in(dir, 0);
  options.run.metrics = &registry;
  const so::StudyResult result = so::run_study(manifest, options);
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.report.resumed, 1u);
  EXPECT_EQ(result.report.claimed, manifest.units.size() - 1);
  EXPECT_TRUE(result.outcomes[0].resumed);
  EXPECT_FALSE(result.outcomes[1].resumed);

  // A second full rerun is pure resume: nothing claimed, orch.claimed
  // stays untouched, and the merge is bitwise-identical.
  obs::MetricsRegistry registry2;
  so::OrchOptions options2 = options_in(dir, 0);
  options2.run.metrics = &registry2;
  const so::StudyResult again = so::run_study(manifest, options2);
  EXPECT_TRUE(again.complete());
  EXPECT_EQ(again.report.resumed, manifest.units.size());
  EXPECT_EQ(again.report.claimed, 0u);
  EXPECT_EQ(registry2.counter(obs::names::kOrchClaimed).value(), 0u);
  EXPECT_EQ(registry2.counter(obs::names::kOrchCompleted).value(),
            manifest.units.size());
  EXPECT_EQ(again.json(), result.json());
}

TEST(OrchStudy, ForkedWorkersMatchSerialBitwise) {
  TempDir serial_dir;
  TempDir forked_dir;
  const so::Manifest manifest = tiny_manifest();
  const so::StudyResult serial =
      so::run_study(manifest, options_in(serial_dir, 0));
  const so::StudyResult forked =
      so::run_study(manifest, options_in(forked_dir, 2));
  EXPECT_TRUE(serial.complete());
  EXPECT_TRUE(forked.complete());
  EXPECT_EQ(forked.json(), serial.json());
}

TEST(OrchStudy, ChaosKilledWorkersRecoverBitwise) {
  TempDir serial_dir;
  const so::Manifest manifest = tiny_manifest();
  const so::StudyResult serial =
      so::run_study(manifest, options_in(serial_dir, 0));

  // Every kill site (after-claim / after-equilibrium / solved-unpub-
  // lished) must recover to the identical merge. Seeds 0..2 cover all
  // three phases for unit 0 (asserted in test_orch.cpp's phase test).
  for (const std::uint64_t seed : {0ull, 1ull, 2ull}) {
    TempDir chaos_dir;
    obs::MetricsRegistry registry;
    so::OrchOptions options = options_in(chaos_dir, 2);
    options.run.metrics = &registry;
    options.chaos.kill_after_units = 1;  // every initial worker dies
    options.chaos.seed = seed;
    const so::StudyResult chaotic = so::run_study(manifest, options);
    EXPECT_TRUE(chaotic.complete()) << "seed " << seed;
    EXPECT_EQ(chaotic.report.poisoned, 0u) << "seed " << seed;
    EXPECT_GT(chaotic.report.reassigned, 0u) << "seed " << seed;
    EXPECT_GT(registry.counter(obs::names::kOrchReassigned).value(), 0u);
    // The contract of the whole subsystem: a SIGKILL mid-unit never
    // loses or corrupts a unit — the merge is bit-for-bit the serial
    // reference, and the store saw no corruption.
    EXPECT_EQ(chaotic.json(), serial.json()) << "seed " << seed;
    EXPECT_EQ(registry.counter(obs::names::kCacheCorrupt).value(), 0u);
  }
}

TEST(OrchStudy, SigtermChaosReleasesLeasesGracefully) {
  TempDir serial_dir;
  const so::Manifest manifest = tiny_manifest();
  const so::StudyResult serial =
      so::run_study(manifest, options_in(serial_dir, 0));

  TempDir chaos_dir;
  so::OrchOptions options = options_in(chaos_dir, 2);
  options.chaos.kill_after_units = 1;
  options.chaos.sigkill = false;  // SIGTERM: handler releases the lease
  options.chaos.seed = 1;
  const so::StudyResult result = so::run_study(manifest, options);
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.json(), serial.json());
}

TEST(OrchStudy, RetryBudgetExhaustionPoisonsInsteadOfWedging) {
  TempDir dir;
  obs::MetricsRegistry registry;
  so::Manifest manifest = tiny_manifest();
  manifest.units.resize(1);  // one unit is enough to poison

  so::OrchOptions options = options_in(dir, 1);
  options.run.metrics = &registry;
  options.retry_budget = 0;            // first reassignment poisons
  options.chaos.kill_after_units = 1;  // worker always dies mid-unit
  options.chaos.seed = 0;
  options.rearm_chaos = true;          // respawns die too
  options.backoff_seconds = 0.05;
  const so::StudyResult result = so::run_study(manifest, options);
  EXPECT_FALSE(result.complete());
  EXPECT_EQ(result.report.poisoned, 1u);
  EXPECT_TRUE(result.outcomes[0].poisoned);
  EXPECT_EQ(registry.counter(obs::names::kOrchPoisoned).value(), 1u);
  // The poison marker survives with its reason, and the merged JSON
  // carries the hole explicitly.
  EXPECT_NE(so::poison_reason(options.study_dir, 0).find("retry budget"),
            std::string::npos);
  EXPECT_NE(result.json().find("\"poisoned\": true"), std::string::npos);

  // A rerun after clearing chaos honors the marker (no silent retry)...
  so::OrchOptions retry = options_in(dir, 0);
  const so::StudyResult honored = so::run_study(manifest, retry);
  EXPECT_EQ(honored.report.poisoned, 1u);
  EXPECT_EQ(honored.report.claimed, 0u);
  // ...until the marker is removed, which re-opens the unit.
  fs::remove(so::poison_path(retry.study_dir, 0));
  const so::StudyResult reopened = so::run_study(manifest, retry);
  EXPECT_TRUE(reopened.complete());
}

TEST(OrchStudy, WriteStudyResultIsAtomicAndStable) {
  TempDir dir;
  const so::Manifest manifest = tiny_manifest();
  const so::StudyResult result =
      so::run_study(manifest, options_in(dir, 0));
  const std::string path = dir.str() + "/result.json";
  ASSERT_TRUE(so::write_study_result(path, result));
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(sca::read_file_bytes(path, bytes));
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), result.json());
}
