#include <gtest/gtest.h>

#include <cmath>

#include "circuits/delay.h"
#include "circuits/vmin.h"
#include "core/scaling_study.h"
#include "scaling/subvth_strategy.h"

// Cross-stack integration: the paper's ANALYTICAL scaling expressions
// (Eqs. 6 and 8) must be validated by the full circuit engine on the
// designed devices — exactly the consistency the paper demonstrates in
// Fig. 6's "C_L S_S^2" overlay.

namespace cc = subscale::circuits;
namespace ss = subscale::scaling;
namespace sco = subscale::core;

namespace {

const sco::ScalingStudy& study() {
  static const sco::ScalingStudy s;
  return s;
}

}  // namespace

TEST(PaperEquations, EnergyFactorTracksSimulatedEnergyAtVmin) {
  // Eq. 8: E(V_min) proportional to C_L S_S^2. Check the node-to-node
  // ratios, super-V_th roadmap.
  double prev_energy = 0.0, prev_factor = 0.0;
  for (std::size_t i = 0; i < study().node_count(); ++i) {
    const auto r = cc::find_vmin(study().super_inverter(i, 0.3));
    const double f = ss::energy_factor(study().super_devices()[i].spec,
                                       study().calibration());
    if (i > 0) {
      const double energy_ratio = r.at_vmin.e_total / prev_energy;
      const double factor_ratio = f / prev_factor;
      EXPECT_NEAR(energy_ratio / factor_ratio, 1.0, 0.25)
          << "generation " << i;
    }
    prev_energy = r.at_vmin.e_total;
    prev_factor = f;
  }
}

TEST(PaperEquations, DelayFactorTracksSimulatedSubVthDelay) {
  // Eq. 6: t_p at V_min proportional to C_L S_S / I_off. Check on the
  // sub-V_th roadmap where I_off is held constant (the paper's preferred
  // regime for this expression).
  double prev_tp = 0.0, prev_factor = 0.0;
  for (std::size_t i = 0; i < study().node_count(); ++i) {
    const auto& dev = study().sub_devices()[i];
    const auto vm = cc::find_vmin(study().sub_inverter(i, 0.3));
    const double tp = vm.at_vmin.stage_delay;
    const double f = dev.delay_factor_raw;
    if (i > 0) {
      const double tp_ratio = tp / prev_tp;
      const double factor_ratio = f / prev_factor;
      EXPECT_NEAR(tp_ratio / factor_ratio, 1.0, 0.30) << "generation " << i;
    }
    prev_tp = tp;
    prev_factor = f;
  }
}

TEST(PaperEquations, VminProportionalToSwing) {
  // Sec. 2.3.3 (after refs [17][18]): V_min = K_Vmin * S_S with K_Vmin a
  // circuit property, not a device property. The fitted K across all
  // eight designed devices must be tight.
  double k_min = 1e9, k_max = 0.0;
  for (std::size_t i = 0; i < study().node_count(); ++i) {
    for (const bool sub : {false, true}) {
      const auto inv = sub ? study().sub_inverter(i, 0.3)
                           : study().super_inverter(i, 0.3);
      const auto vm = cc::find_vmin(inv);
      const double ss_v = sub ? study().sub_devices()[i].device.ss_mv_dec
                              : study().super_devices()[i].ss_mv_dec;
      const double k = vm.vmin / (ss_v * 1e-3);
      k_min = std::min(k_min, k);
      k_max = std::max(k_max, k);
    }
  }
  // K_Vmin ~ 2.5 (dec) for this chain; spread below +-15 %.
  EXPECT_GT(k_min, 1.5);
  EXPECT_LT(k_max, 4.0);
  EXPECT_LT(k_max / k_min, 1.35);
}

TEST(PaperEquations, DynLeakRatioInsensitiveToScalingAtVmin) {
  // Eq. 8's "interesting result": E_dyn and E_leak share the same
  // scaling dependence, so E_dyn/E_leak at V_min is insensitive to
  // scaling.
  double ratio_min = 1e9, ratio_max = 0.0;
  for (std::size_t i = 0; i < study().node_count(); ++i) {
    const auto vm = cc::find_vmin(study().super_inverter(i, 0.3));
    const double ratio = vm.at_vmin.e_dynamic / vm.at_vmin.e_leakage;
    ratio_min = std::min(ratio_min, ratio);
    ratio_max = std::max(ratio_max, ratio);
  }
  EXPECT_LT(ratio_max / ratio_min, 1.25);
}

TEST(PaperEquations, FittedKdStableAcrossNodes) {
  // Eq. 4's k_d is "a fitting parameter": it must come out roughly the
  // same for every designed device (otherwise Eq. 5/6 would not be a
  // usable scaling model).
  double kd_min = 1e9, kd_max = 0.0;
  for (std::size_t i = 0; i < study().node_count(); ++i) {
    const double kd = cc::fit_kd(study().super_inverter(i, 0.25));
    kd_min = std::min(kd_min, kd);
    kd_max = std::max(kd_max, kd);
  }
  EXPECT_GT(kd_min, 0.3);
  EXPECT_LT(kd_max, 2.0);
  EXPECT_LT(kd_max / kd_min, 1.4);
}
