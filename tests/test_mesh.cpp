#include <gtest/gtest.h>

#include <cmath>

#include "mesh/grid1d.h"
#include "mesh/mesh2d.h"

namespace sm = subscale::mesh;

// ---- graded ticks ---------------------------------------------------------

TEST(GradedTicks, EndpointsExactAndMonotone) {
  const auto ticks =
      sm::graded_ticks({.x0 = 0.0, .x1 = 1.0, .h0 = 0.01, .ratio = 1.2});
  ASSERT_GE(ticks.size(), 3u);
  EXPECT_DOUBLE_EQ(ticks.front(), 0.0);
  EXPECT_DOUBLE_EQ(ticks.back(), 1.0);
  for (std::size_t i = 0; i + 1 < ticks.size(); ++i) {
    EXPECT_LT(ticks[i], ticks[i + 1]);
  }
}

TEST(GradedTicks, SpacingGrowsWithRatio) {
  const auto ticks =
      sm::graded_ticks({.x0 = 0.0, .x1 = 10.0, .h0 = 0.1, .ratio = 1.3});
  // First spacing ~ h0; interior spacings grow.
  EXPECT_NEAR(ticks[1] - ticks[0], 0.1, 1e-12);
  for (std::size_t i = 1; i + 2 < ticks.size(); ++i) {
    EXPECT_GE(ticks[i + 1] - ticks[i], (ticks[i] - ticks[i - 1]) * 0.99);
  }
}

TEST(GradedTicks, RejectsBadInput) {
  EXPECT_THROW(sm::graded_ticks({.x0 = 1.0, .x1 = 0.0, .h0 = 0.1, .ratio = 1.2}),
               std::invalid_argument);
  EXPECT_THROW(sm::graded_ticks({.x0 = 0.0, .x1 = 1.0, .h0 = 0.0, .ratio = 1.2}),
               std::invalid_argument);
}

TEST(DoubleGradedTicks, SymmetricAboutMidpoint) {
  const auto ticks = sm::double_graded_ticks(0.0, 2.0, 0.02, 1.25);
  EXPECT_DOUBLE_EQ(ticks.front(), 0.0);
  EXPECT_DOUBLE_EQ(ticks.back(), 2.0);
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    const double mirrored = 2.0 - ticks[ticks.size() - 1 - i];
    EXPECT_NEAR(ticks[i], mirrored, 1e-12);
  }
  // Fine at the edges, coarse in the middle.
  const double edge_h = ticks[1] - ticks[0];
  double max_h = 0.0;
  for (std::size_t i = 0; i + 1 < ticks.size(); ++i) {
    max_h = std::max(max_h, ticks[i + 1] - ticks[i]);
  }
  EXPECT_GT(max_h, 2.0 * edge_h);
}

// ---- Grid1d -----------------------------------------------------------------

TEST(Grid1d, MergeTolerance) {
  sm::Grid1d grid;
  grid.add_ticks({0.0, 1.0, 1.0 + 1e-12, 2.0});
  grid.add_point(0.5);
  grid.finalize(1e-9);
  EXPECT_EQ(grid.size(), 4u);  // the 1.0 duplicate collapses
  EXPECT_DOUBLE_EQ(grid[1], 0.5);
}

TEST(Grid1d, NearestIndex) {
  sm::Grid1d grid({0.0, 1.0, 3.0, 6.0});
  EXPECT_EQ(grid.nearest_index(-5.0), 0u);
  EXPECT_EQ(grid.nearest_index(0.4), 0u);
  EXPECT_EQ(grid.nearest_index(0.6), 1u);
  EXPECT_EQ(grid.nearest_index(4.6), 3u);
  EXPECT_EQ(grid.nearest_index(100.0), 3u);
}

TEST(Grid1d, AddAfterFinalizeThrows) {
  sm::Grid1d grid({0.0, 1.0});
  EXPECT_THROW(grid.add_point(0.5), std::logic_error);
}

// ---- TensorMesh2d --------------------------------------------------------------

namespace {

sm::TensorMesh2d make_unit_mesh(std::size_t nx, std::size_t ny) {
  std::vector<double> xs(nx), ys(ny);
  for (std::size_t i = 0; i < nx; ++i) xs[i] = double(i) / double(nx - 1);
  for (std::size_t j = 0; j < ny; ++j) ys[j] = double(j) / double(ny - 1);
  return sm::TensorMesh2d(sm::Grid1d(xs), sm::Grid1d(ys));
}

}  // namespace

TEST(TensorMesh2d, IndexRoundTrip) {
  const auto mesh = make_unit_mesh(7, 5);
  for (std::size_t j = 0; j < mesh.ny(); ++j) {
    for (std::size_t i = 0; i < mesh.nx(); ++i) {
      const std::size_t idx = mesh.index(i, j);
      EXPECT_EQ(mesh.i_of(idx), i);
      EXPECT_EQ(mesh.j_of(idx), j);
    }
  }
}

TEST(TensorMesh2d, BoxAreasTileTheDomain) {
  const auto mesh = make_unit_mesh(9, 6);
  double total = 0.0;
  for (std::size_t j = 0; j < mesh.ny(); ++j) {
    for (std::size_t i = 0; i < mesh.nx(); ++i) {
      total += mesh.box_area(i, j);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);  // unit square
}

TEST(TensorMesh2d, MaterialBoxAssignment) {
  auto mesh = make_unit_mesh(11, 11);
  mesh.set_material_box(sm::Material::kOxide, 0.0, 1.0, 0.0, 0.3);
  EXPECT_EQ(mesh.material(5, 0), sm::Material::kOxide);
  EXPECT_EQ(mesh.material(5, 3), sm::Material::kOxide);  // y = 0.3 inclusive
  EXPECT_EQ(mesh.material(5, 4), sm::Material::kSilicon);
}

TEST(TensorMesh2d, ContactsOwnNodesExclusively) {
  auto mesh = make_unit_mesh(11, 11);
  mesh.add_contact_box("source", 0.0, 0.2, 0.0, 0.0);
  mesh.add_contact_box("drain", 0.8, 1.0, 0.0, 0.0);
  EXPECT_EQ(mesh.contact_nodes("source").size(), 3u);
  EXPECT_EQ(mesh.contact_nodes("drain").size(), 3u);
  EXPECT_EQ(mesh.contact_of(mesh.index(0, 0)), "source");
  EXPECT_TRUE(mesh.contact_of(mesh.index(5, 5)).empty());
  // Overlapping contact claims must throw.
  EXPECT_THROW(mesh.add_contact_box("gate", 0.1, 0.3, 0.0, 0.0),
               std::logic_error);
}

TEST(TensorMesh2d, UnknownContactThrows) {
  const auto mesh = make_unit_mesh(3, 3);
  EXPECT_THROW(mesh.contact_nodes("nope"), std::out_of_range);
}

TEST(TensorMesh2d, EmptyContactBoxThrows) {
  auto mesh = make_unit_mesh(3, 3);
  EXPECT_THROW(mesh.add_contact_box("x", 10.0, 11.0, 10.0, 11.0),
               std::logic_error);
}

TEST(TensorMesh2d, ControlVolumeHalfWidths) {
  sm::Grid1d xg({0.0, 1.0, 3.0});
  sm::Grid1d yg({0.0, 2.0});
  const sm::TensorMesh2d mesh(xg, yg);
  EXPECT_DOUBLE_EQ(mesh.dx_minus(0), 0.0);   // boundary
  EXPECT_DOUBLE_EQ(mesh.dx_plus(0), 0.5);
  EXPECT_DOUBLE_EQ(mesh.dx_minus(1), 0.5);
  EXPECT_DOUBLE_EQ(mesh.dx_plus(1), 1.0);
  EXPECT_DOUBLE_EQ(mesh.dx_plus(2), 0.0);    // boundary
}
