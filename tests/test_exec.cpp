#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "circuits/variability.h"
#include "core/scaling_study.h"
#include "exec/parallel.h"
#include "exec/policy.h"
#include "exec/rng.h"
#include "exec/task_pool.h"
#include "scaling/subvth_strategy.h"
#include "scaling/supervth_strategy.h"

namespace ex = subscale::exec;
namespace sco = subscale::core;
namespace scl = subscale::scaling;
namespace cc = subscale::circuits;

// ---------------------------------------------------------------------
// ExecPolicy resolution
// ---------------------------------------------------------------------

TEST(ExecPolicy, ExplicitCountWins) {
  EXPECT_EQ(ex::ExecPolicy{3}.resolved_threads(), 3u);
  EXPECT_EQ(ex::ExecPolicy::serial().resolved_threads(), 1u);
}

TEST(ExecPolicy, EnvironmentOverrideAppliesToAutoOnly) {
  ::setenv("SUBSCALE_THREADS", "5", 1);
  EXPECT_EQ(ex::env_thread_override(), 5u);
  EXPECT_EQ(ex::ExecPolicy{}.resolved_threads(), 5u);
  EXPECT_EQ(ex::ExecPolicy{2}.resolved_threads(), 2u);  // explicit wins
  ::unsetenv("SUBSCALE_THREADS");
}

TEST(ExecPolicy, InvalidEnvironmentFallsBackToHardware) {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  for (const char* bad : {"", "zero", "-2", "0"}) {
    ::setenv("SUBSCALE_THREADS", bad, 1);
    EXPECT_EQ(ex::env_thread_override(), 0u) << '"' << bad << '"';
    EXPECT_EQ(ex::ExecPolicy{}.resolved_threads(), hw) << '"' << bad << '"';
  }
  ::unsetenv("SUBSCALE_THREADS");
}

TEST(ExecPolicy, GlobalPolicyIsReplaceable) {
  const ex::ExecPolicy before = ex::global_policy();
  ex::set_global_policy(ex::ExecPolicy{2});
  EXPECT_EQ(ex::global_policy().resolved_threads(), 2u);
  ex::set_global_policy(before);
  EXPECT_EQ(ex::global_policy().threads, before.threads);
}

// ---------------------------------------------------------------------
// TaskPool
// ---------------------------------------------------------------------

TEST(TaskPool, RunsEverySubmittedTask) {
  ex::TaskPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(TaskPool, WaitIdleIsReentrant) {
  ex::TaskPool pool(2);
  pool.wait_idle();  // nothing queued: returns immediately
  std::atomic<int> runs{0};
  pool.submit([&runs] { runs.fetch_add(1); });
  pool.wait_idle();
  pool.wait_idle();
  EXPECT_EQ(runs.load(), 1);
}

TEST(TaskPool, WorkerThreadFlagIsVisibleOnlyInsideTasks) {
  EXPECT_FALSE(ex::TaskPool::on_worker_thread());
  ex::TaskPool pool(2);
  std::atomic<bool> inside{false};
  pool.submit([&inside] { inside = ex::TaskPool::on_worker_thread(); });
  pool.wait_idle();
  EXPECT_TRUE(inside.load());
  EXPECT_FALSE(ex::TaskPool::on_worker_thread());
}

// ---------------------------------------------------------------------
// parallel_for / parallel_map
// ---------------------------------------------------------------------

TEST(Parallel, ForCoversEveryIndexAtAnyThreadCount) {
  for (const std::size_t threads : {1u, 2u, 4u, 9u}) {
    std::vector<int> hits(257, 0);
    const auto errors = ex::parallel_for(
        hits.size(), [&](std::size_t i) { hits[i] += 1; },
        ex::ExecPolicy{threads});
    EXPECT_TRUE(errors.empty());
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 257)
        << threads << " threads";
  }
}

TEST(Parallel, SerialPolicyRunsInlineInIndexOrder) {
  // threads = 1 is the exact serial path: same thread, index order.
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  const auto errors = ex::parallel_for(
      5,
      [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
      },
      ex::ExecPolicy::serial());
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Parallel, MapReturnsValuesInIndexOrder) {
  const auto square = [](std::size_t i) { return i * i; };
  const auto serial =
      ex::parallel_map<std::size_t>(64, square, ex::ExecPolicy::serial());
  for (const std::size_t threads : {2u, 4u, 7u}) {
    const auto results =
        ex::parallel_map<std::size_t>(64, square, ex::ExecPolicy{threads});
    ASSERT_EQ(results.size(), serial.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].index, i);
      ASSERT_TRUE(results[i].ok());
      EXPECT_EQ(*results[i].value, *serial[i].value);
    }
  }
}

TEST(Parallel, ThrowingTaskIsCapturedWhileOthersComplete) {
  std::atomic<int> completed{0};
  const auto results = ex::parallel_map<int>(
      8,
      [&](std::size_t i) -> int {
        if (i == 3) throw std::runtime_error("task 3 failed");
        completed.fetch_add(1);
        return static_cast<int>(i);
      },
      ex::ExecPolicy{4});
  EXPECT_EQ(completed.load(), 7);  // the other seven still ran
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i == 3) {
      EXPECT_FALSE(results[i].ok());
      EXPECT_EQ(results[i].error, "task 3 failed");
      ASSERT_TRUE(results[i].exception);
    } else {
      ASSERT_TRUE(results[i].ok()) << "index " << i;
      EXPECT_EQ(*results[i].value, static_cast<int>(i));
    }
  }
  EXPECT_THROW(ex::rethrow_first(results), std::runtime_error);
  EXPECT_THROW(ex::values_or_throw(results), std::runtime_error);
}

TEST(Parallel, RethrowFirstPicksLowestIndexNotCompletionOrder) {
  for (const std::size_t threads : {1u, 4u}) {
    const auto errors = ex::parallel_for(
        10,
        [](std::size_t i) {
          if (i % 2 == 0) throw std::out_of_range("even " + std::to_string(i));
        },
        ex::ExecPolicy{threads});
    ASSERT_EQ(errors.size(), 5u);
    EXPECT_EQ(errors.front().index, 0u);  // sorted by index
    EXPECT_EQ(errors.front().message, "even 0");
    try {
      ex::rethrow_first(errors);
      FAIL() << "expected rethrow";
    } catch (const std::out_of_range& e) {
      EXPECT_STREQ(e.what(), "even 0");
    }
  }
}

TEST(Parallel, ValuesOrThrowUnwrapsAllSuccess) {
  const auto values = ex::values_or_throw(ex::parallel_map<int>(
      5, [](std::size_t i) { return static_cast<int>(2 * i); },
      ex::ExecPolicy{3}));
  EXPECT_EQ(values, (std::vector<int>{0, 2, 4, 6, 8}));
}

TEST(Parallel, NestedCallsRunInlineWithoutDeadlock) {
  // Layered parallelism (roadmap -> per-node scan) must not submit to a
  // second pool from a worker thread. The inner call degrades inline.
  std::atomic<int> inner_on_worker{0};
  const auto outer = ex::parallel_map<int>(
      6,
      [&](std::size_t i) {
        int sum = 0;
        const auto errors = ex::parallel_for(
            4,
            [&](std::size_t j) {
              if (ex::TaskPool::on_worker_thread()) inner_on_worker.fetch_add(1);
              sum += static_cast<int>(i * 10 + j);
            },
            ex::ExecPolicy{4});
        EXPECT_TRUE(errors.empty());
        return sum;
      },
      ex::ExecPolicy{3});
  for (std::size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(outer[i].ok());
    EXPECT_EQ(*outer[i].value, static_cast<int>(40 * i + 6));
  }
  // Every inner iteration observed itself on a pool worker (proof the
  // outer level was really parallel while the inner level ran inline).
  EXPECT_EQ(inner_on_worker.load(), 24);
}

TEST(ExecRng, SeedStreamsAreStableAndDistinct) {
  // Shard seeding must be a pure function (reproducibility across runs
  // and thread counts) and must decorrelate neighbouring shards.
  EXPECT_EQ(ex::seed_stream(1, 0), ex::seed_stream(1, 0));
  EXPECT_NE(ex::seed_stream(1, 0), ex::seed_stream(1, 1));
  EXPECT_NE(ex::seed_stream(1, 0), ex::seed_stream(2, 0));
  static_assert(ex::splitmix64(0) != 0, "splitmix64 must scramble zero");
}

// ---------------------------------------------------------------------
// Determinism contract on the real refactored call sites
// ---------------------------------------------------------------------

namespace {

const sco::ScalingStudy& study() {
  static const sco::ScalingStudy s;
  return s;
}

void expect_identical(const std::vector<sco::TcadNodeValidation>& a,
                      const std::vector<sco::TcadNodeValidation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].lpoly_nm, b[i].lpoly_nm);
    EXPECT_EQ(a[i].error, b[i].error);
    ASSERT_EQ(a[i].sweep.size(), b[i].sweep.size());
    for (std::size_t p = 0; p < a[i].sweep.size(); ++p) {
      // Bitwise comparison on purpose: the fan-out must not change a bit.
      EXPECT_EQ(a[i].sweep[p].vg, b[i].sweep[p].vg);
      EXPECT_EQ(a[i].sweep[p].id, b[i].sweep[p].id);
    }
    EXPECT_EQ(a[i].report.attempted, b[i].report.attempted);
    ASSERT_EQ(a[i].report.failures.size(), b[i].report.failures.size());
    for (std::size_t p = 0; p < a[i].report.failures.size(); ++p) {
      EXPECT_EQ(a[i].report.failures[p].vg, b[i].report.failures[p].vg);
    }
  }
}

}  // namespace

TEST(ParallelDeterminism, TcadValidationMatchesSerialBitwise) {
  sco::TcadValidationOptions opt;
  opt.nodes = {0, 1};
  opt.points = 6;
  opt.mesh.surface_spacing = 0.6e-9;  // coarse: keep the test fast
  opt.mesh.junction_spacing = 1.5e-9;

  opt.run.exec = ex::ExecPolicy::serial();
  const auto serial = study().tcad_validation(opt);
  opt.run.exec = ex::ExecPolicy{4};
  const auto pooled = study().tcad_validation(opt);
  expect_identical(serial, pooled);
}

TEST(ParallelDeterminism, TcadValidationStrictThrowsThroughThePool) {
  // Strict mode must deliver the original tcad::SolverError (not a
  // flattened copy) even when the failing node ran on a pool worker.
  namespace st = subscale::tcad;
  sco::TcadValidationOptions opt;
  opt.nodes = {0};
  opt.points = 6;
  opt.mesh.surface_spacing = 0.6e-9;
  opt.mesh.junction_spacing = 1.5e-9;
  opt.gummel.fault.stage = st::SolveStage::kPoisson;
  opt.gummel.fault.count = 1'000'000'000;
  opt.gummel.fault.min_bias = 0.0;
  opt.run.strict = true;
  opt.run.exec = ex::ExecPolicy{4};
  EXPECT_THROW(study().tcad_validation(opt), st::SolverError);
}

TEST(ParallelDeterminism, VariabilityMonteCarloMatchesSerialBitwise) {
  const auto inv = study().super_inverter(0, 0.25);
  cc::VariabilityOptions opt;
  opt.samples = 200;
  opt.exec = ex::ExecPolicy::serial();
  const auto serial = cc::delay_variability(inv, {}, opt);
  for (const std::size_t threads : {2u, 4u, 5u}) {
    opt.exec = ex::ExecPolicy{threads};
    const auto pooled = cc::delay_variability(inv, {}, opt);
    EXPECT_EQ(serial.mean, pooled.mean) << threads << " threads";
    EXPECT_EQ(serial.sigma, pooled.sigma);
    EXPECT_EQ(serial.sigma_over_mean, pooled.sigma_over_mean);
    EXPECT_EQ(serial.sigma_ln, pooled.sigma_ln);
    EXPECT_EQ(serial.samples, pooled.samples);
  }
}

TEST(ParallelDeterminism, RoadmapsMatchSerialBitwise) {
  scl::SuperVthOptions sup;
  sup.exec = ex::ExecPolicy::serial();
  const auto sup_serial = scl::supervth_roadmap(subscale::compact::paper_calibration(), sup);
  sup.exec = ex::ExecPolicy{4};
  const auto sup_pooled = scl::supervth_roadmap(subscale::compact::paper_calibration(), sup);
  ASSERT_EQ(sup_serial.size(), sup_pooled.size());
  for (std::size_t i = 0; i < sup_serial.size(); ++i) {
    EXPECT_EQ(sup_serial[i].nsub_cm3, sup_pooled[i].nsub_cm3);
    EXPECT_EQ(sup_serial[i].vth_sat_mv, sup_pooled[i].vth_sat_mv);
    EXPECT_EQ(sup_serial[i].ss_mv_dec, sup_pooled[i].ss_mv_dec);
    EXPECT_EQ(sup_serial[i].tau_ps, sup_pooled[i].tau_ps);
  }

  scl::SubVthOptions sub;
  sub.exec = ex::ExecPolicy::serial();
  const auto sub_serial = scl::subvth_roadmap(sub);
  sub.exec = ex::ExecPolicy{4};
  const auto sub_pooled = scl::subvth_roadmap(sub);
  ASSERT_EQ(sub_serial.size(), sub_pooled.size());
  for (std::size_t i = 0; i < sub_serial.size(); ++i) {
    EXPECT_EQ(sub_serial[i].lpoly_opt_nm, sub_pooled[i].lpoly_opt_nm);
    EXPECT_EQ(sub_serial[i].energy_factor_raw, sub_pooled[i].energy_factor_raw);
    EXPECT_EQ(sub_serial[i].device.ss_mv_dec, sub_pooled[i].device.ss_mv_dec);
  }
}

TEST(ParallelDeterminism, StudyCachesAreSafeUnderConcurrentFirstAccess) {
  // satellite: super_devices()/sub_devices() lazy init behind
  // std::once_flag — hammer a fresh study from many threads at once.
  const sco::ScalingStudy fresh;
  std::vector<const void*> super_ptrs(8, nullptr), sub_ptrs(8, nullptr);
  const auto errors = ex::parallel_for(
      8,
      [&](std::size_t i) {
        super_ptrs[i] = &fresh.super_devices();
        sub_ptrs[i] = &fresh.sub_devices();
      },
      ex::ExecPolicy{8});
  EXPECT_TRUE(errors.empty());
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_EQ(super_ptrs[i], super_ptrs[0]);  // one object, initialized once
    EXPECT_EQ(sub_ptrs[i], sub_ptrs[0]);
  }
}
