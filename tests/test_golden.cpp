/// The golden regression tier: recompute the paper-table/figure headline
/// values and compare them against the checked-in fixtures under
/// tests/golden/ (regenerate DELIBERATELY with tools/golden_gen when a
/// PR means to move the physics). The second half of the suite pins the
/// caching contract: the same quantities computed with the solve cache
/// cold, warm, disabled, and after deliberate on-disk corruption must
/// agree BITWISE — the cache may only change how fast an answer arrives,
/// never which answer.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "cache/solve_cache.h"
#include "cards/technology_card.h"
#include "compact/device_model.h"
#include "compact/mosfet.h"
#include "core/scaling_study.h"
#include "physics/units.h"
#include "scaling/subvth_strategy.h"
#include "scaling/technology.h"

namespace fs = std::filesystem;
namespace sca = subscale::cache;
namespace ss = subscale::scaling;

namespace {

constexpr double kRelTol = 1e-9;

/// Parse a fixture's flat "values" block (one "key": value per line —
/// the io::JsonWriter layout golden_gen emits).
std::map<std::string, double> load_fixture(const std::string& name) {
  const std::string path =
      std::string(SUBSCALE_GOLDEN_DIR) + "/" + name + ".json";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden fixture " << path
                         << " (run tools/golden_gen)";
  std::map<std::string, double> out;
  std::string line;
  bool in_values = false;
  while (std::getline(in, line)) {
    if (!in_values) {
      if (line.find("\"values\": {") != std::string::npos) in_values = true;
      continue;
    }
    if (line.find('}') != std::string::npos) break;
    const std::size_t k0 = line.find('"');
    const std::size_t k1 = line.find('"', k0 + 1);
    const std::size_t colon = line.find(':', k1);
    if (k0 == std::string::npos || k1 == std::string::npos ||
        colon == std::string::npos) {
      continue;
    }
    out[line.substr(k0 + 1, k1 - k0 - 1)] =
        std::strtod(line.c_str() + colon + 1, nullptr);
  }
  return out;
}

void expect_matches(const std::map<std::string, double>& golden,
                    const std::string& key, double computed) {
  const auto it = golden.find(key);
  ASSERT_NE(it, golden.end()) << "fixture has no key " << key;
  const double pinned = it->second;
  const double scale = std::max(std::abs(pinned), 1e-300);
  EXPECT_LE(std::abs(computed - pinned) / scale, kRelTol)
      << key << ": pinned " << pinned << ", computed " << computed;
}

/// One shared study per process (the expensive part of this suite).
const subscale::core::ScalingStudy& study() {
  static const subscale::core::ScalingStudy s;
  return s;
}

struct TempCacheDir {
  fs::path path;
  TempCacheDir() {
    static int seq = 0;
    path = fs::temp_directory_path() /
           ("subscale-golden-cache-" + std::to_string(::getpid()) + "-" +
            std::to_string(seq++));
    fs::remove_all(path);
  }
  ~TempCacheDir() { fs::remove_all(path); }
};

/// Small-but-real design problem for the caching-path equivalence tests
/// (default options would redo the full Table 3 design per run).
ss::SubVthOptions quick_options(sca::SolveCache* cache) {
  ss::SubVthOptions opt;
  opt.lpoly_scan_points = 5;
  opt.split_iterations = 2;
  opt.cache = cache;
  return opt;
}

}  // namespace

// ---- fixture comparisons ----------------------------------------------------

TEST(Golden, Table2SupervthRoadmap) {
  const auto golden = load_fixture("table2_supervth");
  ASSERT_FALSE(golden.empty());
  for (const auto& d : study().super_devices()) {
    const std::string n = d.node.name + ".";
    expect_matches(golden, n + "lpoly_nm", d.node.lpoly_nm);
    expect_matches(golden, n + "nsub_cm3", d.nsub_cm3);
    expect_matches(golden, n + "nhalo_net_cm3", d.nhalo_net_cm3);
    expect_matches(golden, n + "vth_sat_mv", d.vth_sat_mv);
    expect_matches(golden, n + "ioff_pa_um", d.ioff_pa_um);
    expect_matches(golden, n + "ss_mv_dec", d.ss_mv_dec);
    expect_matches(golden, n + "tau_ps", d.tau_ps);
  }
}

TEST(Golden, Table3SubvthRoadmap) {
  const auto golden = load_fixture("table3_subvth");
  ASSERT_FALSE(golden.empty());
  for (const auto& d : study().sub_devices()) {
    const std::string n = d.device.node.name + ".";
    expect_matches(golden, n + "lpoly_opt_nm", d.lpoly_opt_nm);
    expect_matches(golden, n + "nsub_cm3", d.device.nsub_cm3);
    expect_matches(golden, n + "nhalo_net_cm3", d.device.nhalo_net_cm3);
    expect_matches(golden, n + "vth_sat_mv", d.device.vth_sat_mv);
    expect_matches(golden, n + "ioff_pa_um", d.device.ioff_pa_um);
    expect_matches(golden, n + "ss_mv_dec", d.device.ss_mv_dec);
    expect_matches(golden, n + "tau_ps", d.device.tau_ps);
    expect_matches(golden, n + "energy_factor_raw", d.energy_factor_raw);
    expect_matches(golden, n + "delay_factor_raw", d.delay_factor_raw);
  }
}

TEST(Golden, Fig02SsAndIonIoff) {
  const auto golden = load_fixture("fig02_ss_ionioff");
  ASSERT_FALSE(golden.empty());
  for (const auto& d : study().super_devices()) {
    const std::string n = d.node.name + ".";
    expect_matches(golden, n + "ss_mv_dec", d.ss_mv_dec);
    const subscale::compact::CompactMosfet fet(d.spec,
                                               study().calibration());
    const double ion = fet.drain_current(d.node.vdd, d.node.vdd);
    expect_matches(golden, n + "log10_ion_ioff",
                   std::log10(ion / fet.ioff()));
  }
}

TEST(Golden, Fig09LpolyAndSs) {
  const auto golden = load_fixture("fig09_lpoly_ss");
  ASSERT_FALSE(golden.empty());
  for (const auto& d : study().sub_devices()) {
    const std::string n = d.device.node.name + ".";
    expect_matches(golden, n + "lpoly_opt_nm", d.lpoly_opt_nm);
    expect_matches(golden, n + "ss_mv_dec", d.device.ss_mv_dec);
  }
}

TEST(Golden, NanowireIdVgAndSwing) {
  // The same fixed GAA device golden_gen pins: compact backend #2 may
  // only move when the fixture is regenerated deliberately.
  namespace u = subscale::units;
  const auto golden = load_fixture("nanowire_idvg");
  ASSERT_FALSE(golden.empty());
  const auto& card = subscale::cards::nanowire_gaa();
  const auto& node = ss::paper_nodes()[0];
  subscale::doping::MosfetDopingLevels levels;
  levels.nsub = u::per_cm3(1e18);
  levels.np_halo = 0.0;
  const auto spec = ss::make_node_spec(node, node.lpoly_nm, levels,
                                       node.vdd, card.env);
  const auto fet =
      subscale::compact::make_device_model(spec, study().calibration());
  expect_matches(golden, "ss_mv_dec", fet->subthreshold_swing() * 1e3);
  expect_matches(golden, "vth_sat_mv", fet->vth_sat_extracted() * 1e3);
  expect_matches(golden, "ioff_pa_um",
                 u::to_pA_per_um(fet->ioff() / spec.width));
  for (int i = 0; i < 10; ++i) {
    const double vg = 0.05 * i;
    expect_matches(golden, "log10_id." + std::to_string(i),
                   std::log10(fet->drain_current(vg, 0.25)));
  }
}

// ---- cache-path equivalence -------------------------------------------------

TEST(GoldenCache, CachedAndUncachedDesignsAgreeBitwise) {
  const auto& node = ss::paper_nodes()[0];
  const auto& calib = study().calibration();

  // Disabled-cache reference.
  const ss::SubVthDevice plain =
      ss::design_subvth_device(node, quick_options(nullptr), calib);

  TempCacheDir dir;
  sca::CacheOptions copt;
  copt.dir = dir.path.string();
  sca::SolveCache cold_cache{copt};
  const ss::SubVthDevice cold =
      ss::design_subvth_device(node, quick_options(&cold_cache), calib);
  EXPECT_GT(cold_cache.stats().stores, 0u);

  // Fresh instance on the populated directory: replay from disk.
  sca::SolveCache warm_cache{copt};
  const ss::SubVthDevice warm =
      ss::design_subvth_device(node, quick_options(&warm_cache), calib);
  EXPECT_GT(warm_cache.stats().hits, 0u);

  // Bitwise — not approximately: the cache must never change an answer.
  EXPECT_EQ(plain.lpoly_opt_nm, cold.lpoly_opt_nm);
  EXPECT_EQ(plain.lpoly_opt_nm, warm.lpoly_opt_nm);
  EXPECT_EQ(plain.energy_factor_raw, cold.energy_factor_raw);
  EXPECT_EQ(plain.energy_factor_raw, warm.energy_factor_raw);
  EXPECT_EQ(plain.delay_factor_raw, warm.delay_factor_raw);
  EXPECT_EQ(plain.device.nsub_cm3, warm.device.nsub_cm3);
  EXPECT_EQ(plain.device.ss_mv_dec, warm.device.ss_mv_dec);
}

TEST(GoldenCache, CorruptedCacheStillYieldsTheGoldenAnswer) {
  const auto& node = ss::paper_nodes()[0];
  const auto& calib = study().calibration();
  const ss::SubVthDevice plain =
      ss::design_subvth_device(node, quick_options(nullptr), calib);

  TempCacheDir dir;
  sca::CacheOptions copt;
  copt.dir = dir.path.string();
  {
    sca::SolveCache populate{copt};
    ss::design_subvth_device(node, quick_options(&populate), calib);
  }
  // Damage every record on disk: truncate some, scribble over others.
  std::size_t damaged = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir.path)) {
    if (!entry.is_regular_file()) continue;
    std::ofstream out(entry.path(),
                      std::ios::binary | std::ios::trunc);
    if (damaged % 2 == 0) out << "garbage";
    ++damaged;
  }
  ASSERT_GT(damaged, 0u);

  sca::SolveCache corrupted{copt};
  const ss::SubVthDevice recovered =
      ss::design_subvth_device(node, quick_options(&corrupted), calib);
  EXPECT_GT(corrupted.stats().corrupt, 0u);
  EXPECT_EQ(plain.lpoly_opt_nm, recovered.lpoly_opt_nm);
  EXPECT_EQ(plain.energy_factor_raw, recovered.energy_factor_raw);
  EXPECT_EQ(plain.device.ss_mv_dec, recovered.device.ss_mv_dec);
}
