#include <gtest/gtest.h>

#include <cmath>

#include "opt/bisection.h"
#include "opt/coordinate_descent.h"
#include "opt/golden_section.h"

namespace so = subscale::opt;

// ---- golden section -----------------------------------------------------------

TEST(GoldenSection, FindsParabolaMinimum) {
  const auto f = [](double x) { return (x - 1.7) * (x - 1.7) + 0.3; };
  const auto m = so::golden_section_minimize(f, -10.0, 10.0, 1e-10);
  EXPECT_NEAR(m.x, 1.7, 1e-8);
  EXPECT_NEAR(m.value, 0.3, 1e-12);
}

TEST(GoldenSection, HandlesBoundaryMinimum) {
  const auto f = [](double x) { return x; };  // minimum at the left edge
  const auto m = so::golden_section_minimize(f, 2.0, 5.0, 1e-10);
  EXPECT_NEAR(m.x, 2.0, 1e-6);
}

TEST(GoldenSection, RejectsBadInterval) {
  const auto f = [](double x) { return x * x; };
  EXPECT_THROW(so::golden_section_minimize(f, 1.0, 0.0, 1e-6),
               std::invalid_argument);
  EXPECT_THROW(so::golden_section_minimize(f, 0.0, 1.0, 0.0),
               std::invalid_argument);
}

TEST(ScanThenGolden, EscapesLocalMinimum) {
  // Two wells: local at x ~ -1 (value ~1), global at x ~ 2 (value ~0).
  const auto f = [](double x) {
    return std::min((x + 1.0) * (x + 1.0) + 1.0, (x - 2.0) * (x - 2.0));
  };
  const auto m = so::scan_then_golden(f, -5.0, 5.0, 41, 1e-9);
  EXPECT_NEAR(m.x, 2.0, 1e-6);
  EXPECT_NEAR(m.value, 0.0, 1e-10);
}

// ---- bisection ---------------------------------------------------------------------

TEST(Bisect, FindsSqrtTwo) {
  const auto f = [](double x) { return x * x - 2.0; };
  const auto r = so::bisect(f, 0.0, 2.0, 1e-12);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, RequiresSignChange) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_THROW(so::bisect(f, -1.0, 1.0, 1e-9), std::invalid_argument);
}

TEST(SolveMonotoneLog, ExponentialTarget) {
  // f(x) = log10(x): solve f = 18 -> x = 1e18, across many decades.
  const auto f = [](double x) { return std::log10(x); };
  const auto r = so::solve_monotone_log(f, 18.0, 1e15, 1e12, 1e22);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x / 1e18, 1.0, 1e-6);
}

TEST(SolveMonotoneLog, DecreasingFunction) {
  const auto f = [](double x) { return 1.0 / x; };
  const auto r = so::solve_monotone_log(f, 0.25, 1.0, 1e-3, 1e3);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 4.0, 1e-6);
}

TEST(SolveMonotoneLog, UnreachableTargetReportsNotConverged) {
  const auto f = [](double x) { return std::tanh(x); };  // bounded by 1
  const auto r = so::solve_monotone_log(f, 5.0, 1.0, 1e-3, 1e3);
  EXPECT_FALSE(r.converged);
}

// ---- coordinate descent ---------------------------------------------------------------

TEST(CoordinateDescent, QuadraticBowl) {
  const auto f = [](const std::vector<double>& v) {
    const double dx = v[0] - 0.3;
    const double dy = v[1] + 0.6;
    return dx * dx + 2.0 * dy * dy + 1.0;
  };
  const auto r = so::coordinate_descent(
      f, {0.0, 0.0}, {{.lo = -2.0, .hi = 2.0}, {.lo = -2.0, .hi = 2.0}});
  EXPECT_NEAR(r.x[0], 0.3, 1e-4);
  EXPECT_NEAR(r.x[1], -0.6, 1e-4);
  EXPECT_NEAR(r.value, 1.0, 1e-7);
}

TEST(CoordinateDescent, CorrelatedQuadraticConverges) {
  // Mildly correlated quadratic (coordinate descent still converges).
  const auto f = [](const std::vector<double>& v) {
    const double x = v[0], y = v[1];
    return x * x + y * y + 0.8 * x * y - x - y;
  };
  const auto r = so::coordinate_descent(
      f, {0.0, 0.0}, {{.lo = -5.0, .hi = 5.0}, {.lo = -5.0, .hi = 5.0}},
      {.sweeps = 40});
  // Analytic minimum of x^2+y^2+0.8xy-x-y: x = y = 1/2.8.
  EXPECT_NEAR(r.x[0], 1.0 / 2.8, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0 / 2.8, 1e-3);
}

TEST(CoordinateDescent, ClampsStartIntoBox) {
  const auto f = [](const std::vector<double>& v) { return v[0] * v[0]; };
  const auto r =
      so::coordinate_descent(f, {100.0}, {{.lo = -1.0, .hi = 1.0}});
  EXPECT_NEAR(r.x[0], 0.0, 1e-4);
}

TEST(CoordinateDescent, RejectsMismatchedSizes) {
  const auto f = [](const std::vector<double>& v) { return v[0]; };
  EXPECT_THROW(
      so::coordinate_descent(f, {0.0, 0.0}, {{.lo = 0.0, .hi = 1.0}}),
      std::invalid_argument);
}
