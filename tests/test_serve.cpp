// Tests for the design-query service (src/serve): wire schema
// round-trips, frame codec, admission control, the Dispatcher's
// error-mapping and coalescing contracts, and socket end-to-end runs
// against an in-process Server (Unix and TCP transports).

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "cache/serve_keys.h"
#include "cache/solve_cache.h"
#include "obs/names.h"
#include "serve/admission.h"
#include "serve/client.h"
#include "serve/dispatcher.h"
#include "serve/protocol.h"
#include "serve/query.h"
#include "serve/server.h"

namespace fs = std::filesystem;
namespace sv = subscale::serve;
using subscale::cache::query_key;
using subscale::core::Strategy;

namespace {

struct TempDir {
  fs::path path;
  TempDir() {
    static int seq = 0;
    path = fs::temp_directory_path() /
           ("subscale-test-serve-" + std::to_string(::getpid()) + "-" +
            std::to_string(seq++));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

sv::Query design_query(std::size_t node = 0,
                       Strategy strategy = Strategy::kSuperVth) {
  sv::Query q;
  q.kind = sv::QueryKind::kDesign;
  q.node = node;
  q.strategy = strategy;
  return q;
}

}  // namespace

// ---------------------------------------------------------------- query

TEST(ServeQuery, QueryJsonRoundTripPreservesEveryField) {
  sv::Query q;
  q.kind = sv::QueryKind::kSweep;
  q.id = "req-42";
  q.card = "paper_bulk_hot350";
  q.strategy = Strategy::kSubVth;
  q.node = 2;
  q.vd = 0.05;
  q.vg_start = 0.1;
  q.vg_stop = 0.4;
  q.points = 7;
  q.coarse_mesh = true;

  sv::Query back;
  sv::Error error;
  ASSERT_TRUE(sv::parse_query(sv::query_to_json(q), back, error))
      << error.message;
  EXPECT_EQ(back.kind, sv::QueryKind::kSweep);
  EXPECT_EQ(back.id, "req-42");
  EXPECT_EQ(back.card, "paper_bulk_hot350");
  EXPECT_EQ(back.strategy, Strategy::kSubVth);
  EXPECT_EQ(back.node, 2u);
  EXPECT_DOUBLE_EQ(back.vd, 0.05);
  EXPECT_DOUBLE_EQ(back.vg_start, 0.1);
  EXPECT_DOUBLE_EQ(back.vg_stop, 0.4);
  EXPECT_EQ(back.points, 7u);
  EXPECT_TRUE(back.coarse_mesh);
  // Round-trip is canonical: render(parse(render(q))) == render(q).
  EXPECT_EQ(sv::query_to_json(back), sv::query_to_json(q));
}

TEST(ServeQuery, ParseQueryRejectsMalformedInput) {
  sv::Query q;
  sv::Error error;
  EXPECT_FALSE(sv::parse_query("not json at all", q, error));
  EXPECT_EQ(error.code, sv::codes::kBadRequest);

  EXPECT_FALSE(sv::parse_query(
      R"({"proto": "subscale.query.v999", "kind": "design"})", q, error));
  EXPECT_EQ(error.code, sv::codes::kBadRequest);
  EXPECT_NE(error.message.find("proto"), std::string::npos);

  EXPECT_FALSE(sv::parse_query(
      R"({"proto": "subscale.query.v1", "kind": "frobnicate"})", q, error));
  EXPECT_EQ(error.code, sv::codes::kBadRequest);

  EXPECT_FALSE(sv::parse_query(
      R"({"proto": "subscale.query.v1", "kind": "figure",
          "figure": "bogus"})",
      q, error));
  EXPECT_EQ(error.code, sv::codes::kBadRequest);

  EXPECT_FALSE(sv::parse_query(
      R"({"proto": "subscale.query.v1", "kind": "sweep", "points": 1})", q,
      error));
  EXPECT_EQ(error.code, sv::codes::kBadRequest);
}

TEST(ServeQuery, ResultJsonRoundTrip) {
  sv::Result r;
  r.id = "x";
  r.kind = sv::QueryKind::kDesign;
  r.ok = true;
  r.card = "paper_bulk_lstp";
  r.strategy = "subvth";
  r.node = 1;
  r.design.node_name = "65nm";
  r.design.lpoly_nm = 70.5;
  r.design.subvth = true;
  r.design.lpoly_opt_nm = 70.5;

  sv::Result back;
  std::string error;
  ASSERT_TRUE(sv::parse_result(sv::result_to_json(r), back, &error)) << error;
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.id, "x");
  EXPECT_EQ(back.kind, sv::QueryKind::kDesign);
  EXPECT_EQ(back.design.node_name, "65nm");
  EXPECT_DOUBLE_EQ(back.design.lpoly_opt_nm, 70.5);

  const sv::Result err = sv::error_result(design_query(), sv::codes::kBadCard,
                                          "nope", "the detail");
  ASSERT_TRUE(sv::parse_result(sv::result_to_json(err), back, &error));
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.error.code, sv::codes::kBadCard);
  EXPECT_EQ(back.error.message, "nope");
  EXPECT_EQ(back.error.detail, "the detail");
}

TEST(ServeQuery, ContentKeyIgnoresIdAndSeesEveryProblemField) {
  sv::Query a = design_query();
  sv::Query b = a;
  b.id = "different-correlation-tag";
  EXPECT_EQ(query_key(a), query_key(b));  // id never changes the problem

  b = a;
  b.node = 1;
  EXPECT_NE(query_key(a), query_key(b));
  b = a;
  b.strategy = Strategy::kSubVth;
  EXPECT_NE(query_key(a), query_key(b));
  b = a;
  b.card = "paper_bulk_hot350";
  EXPECT_NE(query_key(a), query_key(b));
  b = a;
  b.vd = 0.1;
  EXPECT_NE(query_key(a), query_key(b));
  b = a;
  b.coarse_mesh = true;
  EXPECT_NE(query_key(a), query_key(b));
}

// ------------------------------------------------------------- protocol

TEST(ServeProtocol, HeaderCodecRoundTrips) {
  unsigned char header[sv::kFrameHeaderBytes];
  for (std::uint32_t size : {0u, 1u, 255u, 65536u, sv::kMaxFrameBytes}) {
    sv::encode_frame_header(size, header);
    EXPECT_EQ(sv::decode_frame_header(header), size);
  }
  sv::encode_frame_header(0x01020304u, header);
  EXPECT_EQ(header[0], 0x01);  // big-endian on the wire
  EXPECT_EQ(header[3], 0x04);
}

TEST(ServeProtocol, FrameRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = R"({"hello": "world"})";
  std::string error;
  ASSERT_TRUE(sv::write_frame(fds[0], payload, &error)) << error;
  std::string back;
  ASSERT_EQ(sv::read_frame(fds[1], back, &error), sv::ReadStatus::kOk)
      << error;
  EXPECT_EQ(back, payload);

  ::close(fds[0]);  // orderly close -> clean EOF, not an error
  EXPECT_EQ(sv::read_frame(fds[1], back, &error), sv::ReadStatus::kEof);
  ::close(fds[1]);
}

TEST(ServeProtocol, DecoderReassemblesFragmentsAndPipelinedFrames) {
  const std::string a = "first frame";
  const std::string b = "second";
  std::string wire;
  unsigned char header[sv::kFrameHeaderBytes];
  sv::encode_frame_header(static_cast<std::uint32_t>(a.size()), header);
  wire.append(reinterpret_cast<char*>(header), sv::kFrameHeaderBytes);
  wire += a;
  sv::encode_frame_header(static_cast<std::uint32_t>(b.size()), header);
  wire.append(reinterpret_cast<char*>(header), sv::kFrameHeaderBytes);
  wire += b;

  // Feed one byte at a time: frames pop exactly when complete.
  sv::FrameDecoder decoder;
  std::vector<std::string> frames;
  std::string frame;
  for (char c : wire) {
    decoder.feed(&c, 1);
    while (decoder.next(frame)) frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], a);
  EXPECT_EQ(frames[1], b);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(ServeProtocol, OversizeFrameLatchesDecoder) {
  unsigned char header[sv::kFrameHeaderBytes];
  sv::encode_frame_header(sv::kMaxFrameBytes + 1, header);
  sv::FrameDecoder decoder;
  decoder.feed(reinterpret_cast<char*>(header), sv::kFrameHeaderBytes);
  std::string frame;
  EXPECT_FALSE(decoder.next(frame));
  EXPECT_TRUE(decoder.oversize());
  // Latched: further bytes never produce frames.
  decoder.feed("xxxx", 4);
  EXPECT_FALSE(decoder.next(frame));
}

// ------------------------------------------------------------ admission

TEST(ServeAdmission, PerClientCapThrottlesFloodingClientOnly) {
  sv::AdmissionOptions opt;
  opt.queue_capacity = 16;
  opt.per_client_inflight = 2;
  sv::AdmissionController ctl(opt);

  EXPECT_EQ(ctl.on_arrival("flood"), sv::Admission::kAdmit);
  EXPECT_EQ(ctl.on_arrival("flood"), sv::Admission::kAdmit);
  EXPECT_EQ(ctl.on_arrival("flood"), sv::Admission::kThrottled);
  EXPECT_EQ(ctl.on_arrival("flood"), sv::Admission::kThrottled);
  // A different client is untouched by the flooder's cap.
  EXPECT_EQ(ctl.on_arrival("other"), sv::Admission::kAdmit);
  EXPECT_EQ(ctl.client_inflight("flood"), 2u);
  EXPECT_EQ(ctl.client_inflight("other"), 1u);
  EXPECT_EQ(ctl.inflight(), 3u);

  ctl.on_complete("flood", 1.0);
  EXPECT_EQ(ctl.on_arrival("flood"), sv::Admission::kAdmit);  // slot back
}

TEST(ServeAdmission, GlobalCapacitySheds) {
  sv::AdmissionOptions opt;
  opt.queue_capacity = 3;
  opt.per_client_inflight = 8;
  sv::AdmissionController ctl(opt);
  EXPECT_EQ(ctl.on_arrival("a"), sv::Admission::kAdmit);
  EXPECT_EQ(ctl.on_arrival("b"), sv::Admission::kAdmit);
  EXPECT_EQ(ctl.on_arrival("c"), sv::Admission::kAdmit);
  EXPECT_EQ(ctl.on_arrival("d"), sv::Admission::kOverloaded);
  ctl.on_complete("b", 1.0);
  EXPECT_EQ(ctl.on_arrival("d"), sv::Admission::kAdmit);
}

TEST(ServeAdmission, LatencyGovernorSqueezesAndRecovers) {
  sv::AdmissionOptions opt;
  opt.queue_capacity = 10;
  opt.per_client_inflight = 10;
  opt.latency_target_ms = 10.0;
  opt.smoothing = 1.0;  // EWMA == last sample, for determinism
  sv::AdmissionController ctl(opt);
  EXPECT_EQ(ctl.effective_capacity(), 10u);

  // 2x over target halves the effective queue.
  EXPECT_EQ(ctl.on_arrival("a"), sv::Admission::kAdmit);
  ctl.on_complete("a", 20.0);
  EXPECT_EQ(ctl.effective_capacity(), 5u);

  // 100x over target floors at 1, never 0 (the daemon must always make
  // progress to drain the latency back down).
  EXPECT_EQ(ctl.on_arrival("a"), sv::Admission::kAdmit);
  ctl.on_complete("a", 1000.0);
  EXPECT_EQ(ctl.effective_capacity(), 1u);
  EXPECT_EQ(ctl.on_arrival("a"), sv::Admission::kAdmit);
  EXPECT_EQ(ctl.on_arrival("b"), sv::Admission::kOverloaded);

  // Latency back under target -> full capacity restored.
  ctl.on_complete("a", 1.0);
  EXPECT_EQ(ctl.effective_capacity(), 10u);
}

TEST(ServeAdmission, OptionsValidate) {
  sv::AdmissionOptions opt;
  opt.queue_capacity = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = {};
  opt.per_client_inflight = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = {};
  opt.smoothing = 1.5;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
}

// ----------------------------------------------------------- dispatcher

TEST(ServeDispatcher, DesignQueryReturnsReportRow) {
  sv::Dispatcher dispatcher;
  const sv::Result r = dispatcher.dispatch(design_query(1, Strategy::kSubVth));
  ASSERT_TRUE(r.ok) << r.error.message;
  EXPECT_EQ(r.kind, sv::QueryKind::kDesign);
  EXPECT_EQ(r.strategy, "subvth");
  EXPECT_EQ(r.design.node_name, "65nm");
  EXPECT_TRUE(r.design.subvth);
  EXPECT_GT(r.design.lpoly_opt_nm, 0.0);
  EXPECT_GT(r.design.vth_sat_mv, 0.0);
}

TEST(ServeDispatcher, FigureQueryChartsEveryNode) {
  sv::Dispatcher dispatcher;
  sv::Query q;
  q.kind = sv::QueryKind::kFigure;
  q.figure = "ss";
  q.strategy = Strategy::kSubVth;
  const sv::Result r = dispatcher.dispatch(q);
  ASSERT_TRUE(r.ok) << r.error.message;
  EXPECT_EQ(r.figure.x_label, "node_nm");
  EXPECT_EQ(r.figure.y_label, "ss_mv_dec");
  ASSERT_EQ(r.figure.x.size(), r.figure.y.size());
  EXPECT_GE(r.figure.x.size(), 4u);  // the paper card's four nodes
  for (double y : r.figure.y) EXPECT_GT(y, 0.0);
}

TEST(ServeDispatcher, ErrorsMapToStructuredCodesNotExceptions) {
  sv::Dispatcher dispatcher;

  // Unresolvable card -> bad_card.
  sv::Query q = design_query();
  q.card = "no_such_card_anywhere";
  sv::Result r = dispatcher.dispatch(q);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error.code, sv::codes::kBadCard);
  EXPECT_FALSE(r.error.detail.empty());

  // Node out of range -> bad_request, names the valid range.
  q = design_query(99);
  r = dispatcher.dispatch(q);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error.code, sv::codes::kBadRequest);

  // TCAD sweep on a nanowire deck -> unsupported (the factory's
  // rejection, classified instead of propagated).
  q = sv::Query{};
  q.kind = sv::QueryKind::kSweep;
  q.card = "nanowire_gaa";
  r = dispatcher.dispatch(q);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error.code, sv::codes::kUnsupported);

  // Invalid sweep shape -> bad_request from Query::validate.
  q = sv::Query{};
  q.kind = sv::QueryKind::kSweep;
  q.vg_stop = q.vg_start;
  r = dispatcher.dispatch(q);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error.code, sv::codes::kBadRequest);

  // The dispatcher is still healthy after every failure.
  r = dispatcher.dispatch(design_query());
  EXPECT_TRUE(r.ok);
}

TEST(ServeDispatcher, ServerInfoCarriesProtoUptimeAndMetrics) {
  subscale::obs::MetricsRegistry registry;
  subscale::obs::names::preregister_standard(registry);
  sv::DispatcherOptions options;
  options.run.metrics = &registry;
  sv::Dispatcher dispatcher(options);
  dispatcher.dispatch(design_query());

  sv::Query q;
  q.kind = sv::QueryKind::kServerInfo;
  const sv::Result r = dispatcher.dispatch(q);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.info.proto, sv::kProtocolVersion);
  EXPECT_EQ(r.info.card, "paper_bulk_lstp");
  EXPECT_GE(r.info.uptime_s, 0.0);
  double executed = -1.0;
  for (const auto& [name, value] : r.info.metrics) {
    if (name == subscale::obs::names::kServeExecuted) executed = value;
  }
  // design + this info query, both through the executed counter.
  EXPECT_DOUBLE_EQ(executed, 2.0);
}

TEST(ServeDispatcher, IdenticalInflightQueriesSolveExactlyOnce) {
  constexpr int kClients = 6;
  std::promise<void> release;
  std::shared_future<void> release_fut = release.get_future().share();
  std::atomic<int> entered{0};

  sv::DispatcherOptions options;
  options.compute_hook = [&](const sv::Query&) {
    entered.fetch_add(1);
    release_fut.wait();  // hold the leader until every follower arrived
  };
  sv::Dispatcher dispatcher(options);

  sv::Query q = design_query(0, Strategy::kSubVth);
  std::vector<std::thread> threads;
  std::vector<sv::Result> results(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      sv::Query mine = q;
      mine.id = "client-" + std::to_string(i);
      results[i] = dispatcher.dispatch(mine);
    });
  }
  // Wait until the leader is inside the hook, then until every follower
  // is parked on its shared future (coalesced() counts them on entry).
  while (entered.load() == 0) std::this_thread::yield();
  while (dispatcher.coalesced() < kClients - 1) std::this_thread::yield();
  release.set_value();
  for (auto& t : threads) t.join();

  EXPECT_EQ(dispatcher.executed(), 1u);  // exactly one solve
  EXPECT_EQ(dispatcher.coalesced(), static_cast<std::uint64_t>(kClients - 1));
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(results[i].ok) << results[i].error.message;
    EXPECT_EQ(results[i].id, "client-" + std::to_string(i));  // own tag back
    // Same answer for everyone: identical bytes once the echoed id is
    // normalized away.
    sv::Result normalized = results[i];
    normalized.id.clear();
    sv::Result first = results[0];
    first.id.clear();
    EXPECT_EQ(sv::result_to_json(normalized), sv::result_to_json(first));
  }
}

TEST(ServeDispatcher, DistinctQueriesDoNotCoalesce) {
  sv::Dispatcher dispatcher;
  dispatcher.dispatch(design_query(0));
  dispatcher.dispatch(design_query(1));
  dispatcher.dispatch(design_query(0, Strategy::kSubVth));
  EXPECT_EQ(dispatcher.executed(), 3u);
  EXPECT_EQ(dispatcher.coalesced(), 0u);
}

// --------------------------------------------------------------- server

namespace {

sv::ServerOptions unix_server_options(const std::string& socket_path) {
  sv::ServerOptions options;
  options.socket_path = socket_path;
  options.workers = 2;
  return options;
}

}  // namespace

TEST(ServeServer, UnixSocketEndToEnd) {
  TempDir dir;
  sv::Server server(unix_server_options(dir.str() + "/sock"));
  server.start();

  sv::Client client;
  ASSERT_TRUE(client.connect_unix(server.socket_path())) << client.error();
  sv::Result r;
  ASSERT_TRUE(client.roundtrip(design_query(1), r)) << client.error();
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.design.node_name, "65nm");

  // The response bytes equal the transport-free dispatch rendering: the
  // daemon adds nothing and loses nothing.
  sv::Dispatcher local;
  EXPECT_EQ(client.last_response_text(),
            sv::result_to_json(local.dispatch(design_query(1))));
  server.stop();
}

TEST(ServeServer, TcpLoopbackEndToEnd) {
  sv::ServerOptions options;
  options.port = 0;  // ephemeral
  sv::Server server(options);
  server.start();
  ASSERT_GT(server.port(), 0);

  sv::Client client;
  ASSERT_TRUE(client.connect_tcp("127.0.0.1", server.port()))
      << client.error();
  sv::Query q;
  q.kind = sv::QueryKind::kServerInfo;
  sv::Result r;
  ASSERT_TRUE(client.roundtrip(q, r)) << client.error();
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.info.proto, sv::kProtocolVersion);
  server.stop();
}

TEST(ServeServer, MalformedFrameGetsErrorResponseAndDaemonSurvives) {
  TempDir dir;
  sv::Server server(unix_server_options(dir.str() + "/sock"));
  server.start();

  sv::Client client;
  ASSERT_TRUE(client.connect_unix(server.socket_path()));
  sv::Result r;
  {
    // A well-framed but unparseable payload -> structured bad_request.
    // Client::send_query only sends valid queries, so frame by hand on
    // a raw socket.
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  server.socket_path().c_str());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    ASSERT_TRUE(sv::write_frame(fd, "this is not json"));
    std::string payload;
    ASSERT_EQ(sv::read_frame(fd, payload), sv::ReadStatus::kOk);
    sv::Result bad;
    std::string parse_error;
    ASSERT_TRUE(sv::parse_result(payload, bad, &parse_error)) << parse_error;
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.error.code, sv::codes::kBadRequest);
    ::close(fd);
  }
  // The daemon is still serving real queries afterwards.
  ASSERT_TRUE(client.roundtrip(design_query(), r)) << client.error();
  EXPECT_TRUE(r.ok);
  server.stop();
}

TEST(ServeServer, FloodingClientIsThrottledWhileSecondClientIsServed) {
  TempDir dir;
  sv::ServerOptions options = unix_server_options(dir.str() + "/sock");
  options.workers = 1;
  options.admission.per_client_inflight = 2;
  options.admission.queue_capacity = 16;

  // Hold every admitted solve until the rejection pattern is collected,
  // so the flooder's slots stay occupied deterministically.
  std::promise<void> release;
  std::shared_future<void> release_fut = release.get_future().share();
  options.dispatcher.compute_hook = [release_fut](const sv::Query&) {
    release_fut.wait();
  };

  sv::Server server(options);
  server.start();

  sv::Client flood;
  ASSERT_TRUE(flood.connect_unix(server.socket_path()));
  // Pipeline 6 DISTINCT queries (distinct nodes/strategies so none
  // coalesce): 2 admitted (cap), 4 throttled immediately.
  for (int i = 0; i < 6; ++i) {
    sv::Query q = design_query(static_cast<std::size_t>(i % 3),
                               i < 3 ? Strategy::kSuperVth
                                     : Strategy::kSubVth);
    q.id = "flood-" + std::to_string(i);
    ASSERT_TRUE(flood.send_query(q)) << flood.error();
  }
  int throttled = 0;
  std::vector<sv::Result> immediate(4);
  for (int i = 0; i < 4; ++i) {
    // The four rejections come back first (the two admitted are held).
    ASSERT_TRUE(flood.recv_result(immediate[i])) << flood.error();
    EXPECT_FALSE(immediate[i].ok);
    EXPECT_EQ(immediate[i].error.code, sv::codes::kThrottled);
    ++throttled;
  }
  EXPECT_EQ(throttled, 4);

  // A second client lands in the queue untouched by the flooder.
  sv::Client second;
  ASSERT_TRUE(second.connect_unix(server.socket_path()));
  sv::Query q = design_query(3);
  q.id = "second";
  ASSERT_TRUE(second.send_query(q));

  release.set_value();  // let the held solves drain
  sv::Result r;
  ASSERT_TRUE(second.recv_result(r)) << second.error();
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.id, "second");
  // And the flooder's two admitted queries complete too.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(flood.recv_result(r)) << flood.error();
    EXPECT_TRUE(r.ok);
  }
  server.stop();
}

TEST(ServeServer, RestartOnWarmCacheRepliesBitwiseIdentical) {
  TempDir dir;
  const std::string cache_dir = dir.str() + "/cache";
  const auto make_options = [&](const std::string& sock) {
    sv::ServerOptions options = unix_server_options(dir.str() + "/" + sock);
    return options;
  };

  sv::Query q;
  q.kind = sv::QueryKind::kSweep;
  q.node = 0;
  q.points = 3;
  q.coarse_mesh = true;

  std::string cold_bytes;
  {
    subscale::cache::SolveCache cache(
        [&] {
          subscale::cache::CacheOptions c;
          c.dir = cache_dir;
          return c;
        }());
    sv::ServerOptions options = make_options("sock1");
    options.dispatcher.run.cache = &cache;
    sv::Server server(options);
    server.start();
    sv::Client client;
    ASSERT_TRUE(client.connect_unix(server.socket_path()));
    sv::Result r;
    ASSERT_TRUE(client.roundtrip(q, r)) << client.error();
    ASSERT_TRUE(r.ok) << r.error.message;
    cold_bytes = client.last_response_text();
    server.stop();
  }
  // A fresh server on the same cache dir answers from the persistent
  // cache -- byte-identical to the cold solve.
  {
    subscale::cache::SolveCache cache(
        [&] {
          subscale::cache::CacheOptions c;
          c.dir = cache_dir;
          return c;
        }());
    sv::ServerOptions options = make_options("sock2");
    options.dispatcher.run.cache = &cache;
    sv::Server server(options);
    server.start();
    sv::Client client;
    ASSERT_TRUE(client.connect_unix(server.socket_path()));
    sv::Result r;
    ASSERT_TRUE(client.roundtrip(q, r)) << client.error();
    ASSERT_TRUE(r.ok) << r.error.message;
    EXPECT_EQ(client.last_response_text(), cold_bytes);
    EXPECT_GT(cache.stats().hits, 0u);
    server.stop();
  }
}

// ---- metrics query (the live telemetry export) ----------------------------

TEST(ServeMetrics, ByteIdenticalFromDaemonSocketAndLocalDispatcher) {
  TempDir dir;
  subscale::obs::MetricsRegistry registry;
  subscale::obs::names::preregister_standard(registry);

  sv::ServerOptions options = unix_server_options(dir.str() + "/sock");
  options.dispatcher.run.metrics = &registry;
  sv::Server server(options);
  server.start();

  sv::Client client;
  ASSERT_TRUE(client.connect_unix(server.socket_path())) << client.error();

  // One real query first so the counters/histograms are non-trivial —
  // byte-identity over all-zeros would prove much less.
  sv::Result warm;
  ASSERT_TRUE(client.roundtrip(design_query(0), warm)) << client.error();
  ASSERT_TRUE(warm.ok) << warm.error.message;

  sv::Query q;
  q.kind = sv::QueryKind::kMetrics;
  q.id = "probe";
  sv::Result remote;
  ASSERT_TRUE(client.roundtrip(q, remote)) << client.error();
  ASSERT_TRUE(remote.ok) << remote.error.message;
  EXPECT_TRUE(remote.metrics.enabled);
  EXPECT_TRUE(remote.metrics.has_admission);

  // A local Dispatcher sharing the registry and the daemon's admission
  // controller must render the exact same bytes: the payload is
  // clock-free and gathering it perturbs nothing.
  sv::DispatcherOptions local_options;
  local_options.run.metrics = &registry;
  local_options.admission = &server.admission();
  sv::Dispatcher local(local_options);
  EXPECT_EQ(client.last_response_text(),
            sv::result_to_json(local.dispatch(q)));
  server.stop();
}

TEST(ServeMetrics, ProbeOnlyConnectionsLeaveTheSnapshotUntouched) {
  TempDir dir;
  subscale::obs::MetricsRegistry registry;
  subscale::obs::names::preregister_standard(registry);

  sv::ServerOptions options = unix_server_options(dir.str() + "/sock");
  options.dispatcher.run.metrics = &registry;
  sv::Server server(options);
  server.start();

  sv::Client worker;
  ASSERT_TRUE(worker.connect_unix(server.socket_path())) << worker.error();
  sv::Result warm;
  ASSERT_TRUE(worker.roundtrip(design_query(0), warm)) << worker.error();
  ASSERT_TRUE(warm.ok) << warm.error.message;

  // The one-shot CLI opens a fresh connection per probe. Two such
  // probes must render byte-identical documents: serve.clients counts
  // connections that issued a *counted* request, not raw accepts, so a
  // probe-only connection never shows up in its own snapshot.
  sv::Query q;
  q.kind = sv::QueryKind::kMetrics;
  std::string first;
  for (std::string* out : {&first, static_cast<std::string*>(nullptr)}) {
    sv::Client probe;
    ASSERT_TRUE(probe.connect_unix(server.socket_path())) << probe.error();
    sv::Result result;
    ASSERT_TRUE(probe.roundtrip(q, result)) << probe.error();
    ASSERT_TRUE(result.ok) << result.error.message;
    if (out != nullptr) {
      *out = probe.last_response_text();
    } else {
      EXPECT_EQ(first, probe.last_response_text());
      bool found = false;
      for (const auto& [key, value] : result.metrics.counters) {
        if (key == "serve.clients") {
          EXPECT_EQ(value, 1u);  // only the worker connection counted
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
  server.stop();
}

TEST(ServeMetrics, QueryDoesNotPerturbWhatItReports) {
  subscale::obs::MetricsRegistry registry;
  subscale::obs::names::preregister_standard(registry);
  sv::DispatcherOptions options;
  options.run.metrics = &registry;
  sv::Dispatcher dispatcher(options);

  sv::Query q;
  q.kind = sv::QueryKind::kMetrics;
  q.id = "same";
  const std::string first = sv::result_to_json(dispatcher.dispatch(q));
  const std::string second = sv::result_to_json(dispatcher.dispatch(q));
  EXPECT_EQ(first, second);
  // Unlike every other kind, metrics queries do not count as executed —
  // observation, not work.
  EXPECT_EQ(dispatcher.executed(), 0u);
  EXPECT_EQ(registry.snapshot().counter(
                subscale::obs::names::kServeExecuted),
            0u);
}

TEST(ServeMetrics, PayloadJsonRoundTripsAndRendersPrometheus) {
  subscale::obs::MetricsRegistry registry;
  subscale::obs::names::preregister_standard(registry);
  registry.counter(subscale::obs::names::kGummelSolves).add(7);
  registry.gauge(subscale::obs::names::kPoolUtilizationPct).set(42.5);
  auto& h = registry.histogram(subscale::obs::names::kSweepPointMs,
                               subscale::obs::buckets::kLatencyMs);
  h.record(0.3);
  h.record(4.0);
  h.record(50000.0);  // overflow bucket

  sv::DispatcherOptions options;
  options.run.metrics = &registry;
  sv::Dispatcher dispatcher(options);
  sv::Query q;
  q.kind = sv::QueryKind::kMetrics;
  const sv::Result result = dispatcher.dispatch(q);
  ASSERT_TRUE(result.ok);

  // JSON round-trip is a byte fixed point.
  const std::string rendered = sv::result_to_json(result);
  sv::Result parsed;
  std::string error;
  ASSERT_TRUE(sv::parse_result(rendered, parsed, &error)) << error;
  EXPECT_EQ(sv::result_to_json(parsed), rendered);
  EXPECT_TRUE(parsed.metrics.enabled);
  bool saw_hist = false;
  for (const auto& hist : parsed.metrics.histograms) {
    if (hist.name == subscale::obs::names::kSweepPointMs) {
      saw_hist = true;
      EXPECT_EQ(hist.count, 3u);
      EXPECT_GT(hist.p99, 0.0);
      ASSERT_FALSE(hist.buckets.empty());
      // The overflow bucket survives the trip with its infinite bound.
      EXPECT_TRUE(std::isinf(hist.buckets.back().first));
      EXPECT_EQ(hist.buckets.back().second, 1u);
    }
  }
  EXPECT_TRUE(saw_hist);

  // The Prometheus text exposition renders from the same payload.
  const std::string prom = sv::metrics_to_prometheus(result.metrics);
  EXPECT_NE(prom.find("# TYPE subscale_tcad_gummel_solves counter"),
            std::string::npos);
  EXPECT_NE(prom.find("subscale_tcad_gummel_solves 7"), std::string::npos);
  EXPECT_NE(prom.find("subscale_exec_pool_utilization_pct 42.5"),
            std::string::npos);
  EXPECT_NE(prom.find("subscale_tcad_sweep_point_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("subscale_tcad_sweep_point_ms_count 3"),
            std::string::npos);
  EXPECT_NE(prom.find("subscale_tcad_sweep_point_ms_p99"),
            std::string::npos);
  // And identically so after the wire round-trip (the CLI's remote
  // path renders from a parsed payload).
  EXPECT_EQ(sv::metrics_to_prometheus(parsed.metrics), prom);
}

TEST(ServeMetrics, SnapshotSurfacesTraceRingDropAccounting) {
  subscale::obs::MetricsRegistry registry;
  subscale::obs::TraceRing ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.record(subscale::obs::TraceKind::kStageEnter, "stage");
  }
  ASSERT_GT(ring.dropped(), 0u);

  sv::DispatcherOptions options;
  options.run.metrics = &registry;
  options.run.trace = &ring;
  sv::Dispatcher dispatcher(options);
  sv::Query q;
  q.kind = sv::QueryKind::kMetrics;
  const sv::Result result = dispatcher.dispatch(q);
  ASSERT_TRUE(result.ok);
  ASSERT_TRUE(result.metrics.has_trace);
  EXPECT_EQ(result.metrics.trace.capacity, 4u);
  EXPECT_EQ(result.metrics.trace.recorded, 10u);
  EXPECT_EQ(result.metrics.trace.dropped, ring.dropped());

  // The drop accounting survives the wire too.
  sv::Result parsed;
  ASSERT_TRUE(sv::parse_result(sv::result_to_json(result), parsed));
  EXPECT_TRUE(parsed.metrics.has_trace);
  EXPECT_EQ(parsed.metrics.trace.dropped, result.metrics.trace.dropped);
}

TEST(ServeMetrics, SnapshotCarriesProfilerRollupWhenWired) {
  subscale::obs::MetricsRegistry registry;
  subscale::obs::SpanProfiler profiler;
  {
    subscale::obs::ScopedSpan outer(&profiler, "outer");
    subscale::obs::ScopedSpan inner(&profiler, "inner");
  }

  sv::DispatcherOptions options;
  options.run.metrics = &registry;
  options.run.profiler = &profiler;
  sv::Dispatcher dispatcher(options);
  sv::Query q;
  q.kind = sv::QueryKind::kMetrics;
  const sv::Result result = dispatcher.dispatch(q);
  ASSERT_TRUE(result.ok);
  ASSERT_TRUE(result.metrics.has_profiler);
  EXPECT_EQ(result.metrics.profiler.spans, 2u);
  ASSERT_FALSE(result.metrics.profiler.rollup.empty());
  bool saw_outer = false;
  for (const auto& row : result.metrics.profiler.rollup) {
    if (row.label == "outer") {
      saw_outer = true;
      EXPECT_EQ(row.count, 1u);
    }
  }
  EXPECT_TRUE(saw_outer);

  // Without a profiler the block is absent, not zero-filled.
  sv::DispatcherOptions bare;
  bare.run.metrics = &registry;
  sv::Dispatcher plain(bare);
  EXPECT_FALSE(plain.dispatch(q).metrics.has_profiler);
}
