#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "compact/device_spec.h"
#include "core/scaling_study.h"
#include "exec/parallel.h"
#include "exec/run_context.h"
#include "linalg/bicgstab.h"
#include "obs/convergence.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/profiler.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "tcad/device_sim.h"

namespace so = subscale::obs;
namespace se = subscale::exec;
namespace sl = subscale::linalg;
namespace st = subscale::tcad;
namespace sco = subscale::core;

namespace {

/// Restore the process-default registry on scope exit so no test leaks
/// an installed registry into its neighbours.
struct DefaultRegistryGuard {
  so::MetricsRegistry* previous = so::default_registry();
  ~DefaultRegistryGuard() { so::set_default_registry(previous); }
};

/// Same guard for the process-default span profiler.
struct DefaultProfilerGuard {
  so::SpanProfiler* previous = so::default_profiler();
  ~DefaultProfilerGuard() { so::set_default_profiler(previous); }
};

st::MeshOptions coarse_mesh() {
  st::MeshOptions mesh;
  mesh.surface_spacing = 0.6e-9;
  mesh.junction_spacing = 1.5e-9;
  return mesh;
}

subscale::compact::DeviceSpec nfet_90() {
  return subscale::compact::make_spec_from_table(
      subscale::doping::Polarity::kNfet, 65, 2.10, 1.52e18, 3.63e18, 1.2,
      1.0);
}

}  // namespace

// ---- instruments ----------------------------------------------------------

TEST(Metrics, CounterAccumulatesAndResets) {
  so::MetricsRegistry reg;
  so::Counter& c = reg.counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&reg.counter("test.counter"), &c);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeSetAndSetMax) {
  so::MetricsRegistry reg;
  so::Gauge& g = reg.gauge("test.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set_max(1.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
}

TEST(Metrics, HistogramBucketsAndOverflow) {
  so::MetricsRegistry reg;
  so::Histogram& h = reg.histogram("test.iters", so::buckets::kIterations);
  h.record(1.0);    // first bucket (<= 1)
  h.record(1.0);
  h.record(5000.0);  // beyond the last bound: overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 5002.0);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(so::buckets::kIterations.count), 1u);  // overflow
}

TEST(Metrics, PercentileOfEmptyHistogramIsZero) {
  so::MetricsRegistry reg;
  reg.histogram("test.empty", so::buckets::kIterations);
  const so::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].percentile(99.0), 0.0);
}

TEST(Metrics, PercentileInterpolatesWithinSingleBucket) {
  so::MetricsRegistry reg;
  so::Histogram& h = reg.histogram("test.single", so::buckets::kIterations);
  for (int i = 0; i < 4; ++i) h.record(1.0);  // all in bucket (0, 1]
  const so::MetricsSnapshot snap = reg.snapshot();
  const auto& hv = snap.histograms[0];
  // Linear interpolation from the first bucket's lower edge (0): rank
  // p of 4 samples lands p% of the way through the (0, 1] bucket.
  EXPECT_DOUBLE_EQ(hv.percentile(25.0), 0.25);
  EXPECT_DOUBLE_EQ(hv.percentile(50.0), 0.5);
  EXPECT_DOUBLE_EQ(hv.percentile(100.0), 1.0);
  // Out-of-range p clamps instead of extrapolating.
  EXPECT_DOUBLE_EQ(hv.percentile(150.0), 1.0);
  EXPECT_GE(hv.percentile(-10.0), 0.0);
}

TEST(Metrics, PercentileInterpolatesAcrossBuckets) {
  so::MetricsRegistry reg;
  so::Histogram& h = reg.histogram("test.multi", so::buckets::kIterations);
  h.record(1.0);  // bucket (0, 1]
  h.record(2.0);  // bucket (1, 2]
  h.record(3.0);  // bucket (2, 3]
  h.record(3.0);
  const so::MetricsSnapshot snap = reg.snapshot();
  const auto& hv = snap.histograms[0];
  // target = 2 of 4 lands exactly at the top of the (1, 2] bucket.
  EXPECT_DOUBLE_EQ(hv.percentile(50.0), 2.0);
  // target = 3 of 4: halfway through the (2, 3] bucket's two samples.
  EXPECT_DOUBLE_EQ(hv.percentile(75.0), 2.5);
}

TEST(Metrics, PercentileOverflowBucketClampsToHighestFiniteBound) {
  so::MetricsRegistry reg;
  so::Histogram& h = reg.histogram("test.ovf", so::buckets::kIterations);
  h.record(5000.0);  // beyond the last finite bound (1000)
  h.record(9000.0);
  const so::MetricsSnapshot snap = reg.snapshot();
  const auto& hv = snap.histograms[0];
  // No upper edge to interpolate toward: every rank in the overflow
  // bucket reports the highest finite bound.
  EXPECT_DOUBLE_EQ(hv.percentile(50.0), 1000.0);
  EXPECT_DOUBLE_EQ(hv.percentile(99.0), 1000.0);
}

TEST(Metrics, PercentilesAreMonotone) {
  so::MetricsRegistry reg;
  so::Histogram& h = reg.histogram("test.mono", so::buckets::kLatencyMs);
  for (double v : {0.05, 0.2, 0.4, 0.9, 2.0, 4.0, 9.0, 40.0, 900.0,
                   20000.0}) {
    h.record(v);
  }
  const so::MetricsSnapshot snap = reg.snapshot();
  const auto& hv = snap.histograms[0];
  const double p50 = hv.percentile(50.0);
  const double p90 = hv.percentile(90.0);
  const double p99 = hv.percentile(99.0);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
}

TEST(Metrics, HistogramLayoutConflictThrows) {
  so::MetricsRegistry reg;
  reg.histogram("test.h", so::buckets::kIterations);
  EXPECT_NO_THROW(reg.histogram("test.h", so::buckets::kIterations));
  EXPECT_THROW(reg.histogram("test.h", so::buckets::kLatencyMs),
               std::invalid_argument);
}

TEST(Metrics, SnapshotCarriesEveryInstrument) {
  so::MetricsRegistry reg;
  reg.counter("a.count").add(2);
  reg.gauge("a.gauge").set(1.25);
  reg.histogram("a.hist", so::buckets::kLatencyMs).record(3.0);
  const so::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("a.count"), 2u);
  EXPECT_EQ(snap.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge("a.gauge"), 1.25);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "a.hist");
  EXPECT_EQ(snap.histograms[0].count, 1u);
  // Buckets include the +inf overflow slot.
  EXPECT_EQ(snap.histograms[0].buckets.size(),
            so::buckets::kLatencyMs.count + 1);
}

TEST(Metrics, PreregisterStandardCoversTheSchema) {
  so::MetricsRegistry reg;
  so::names::preregister_standard(reg);
  const so::MetricsSnapshot snap = reg.snapshot();
  EXPECT_GE(snap.counters.size(), 20u);
  EXPECT_GE(snap.gauges.size(), 3u);
  EXPECT_GE(snap.histograms.size(), 3u);
  // Everything preregisters at zero.
  for (const auto& [name, value] : snap.counters) {
    EXPECT_EQ(value, 0u) << name;
  }
}

// ---- trace ring -----------------------------------------------------------

TEST(Trace, RingWrapsAndCounts) {
  so::TraceRing ring(4);
  for (int i = 0; i < 6; ++i) {
    ring.record(so::TraceKind::kRetry, "stage", static_cast<double>(i));
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.total_recorded(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: events 2..5 survive.
  EXPECT_DOUBLE_EQ(events.front().a, 2.0);
  EXPECT_DOUBLE_EQ(events.back().a, 5.0);
  // kind_counts tallies retained events only (the ring holds 4).
  const auto counts = ring.kind_counts();
  EXPECT_EQ(counts[static_cast<std::size_t>(so::TraceKind::kRetry)], 4u);
  ring.clear();
  EXPECT_EQ(ring.snapshot().size(), 0u);
}

TEST(Trace, KindNamesAreStable) {
  EXPECT_STREQ(so::to_string(so::TraceKind::kStepHalve), "step_halve");
  EXPECT_STREQ(so::to_string(so::TraceKind::kRollback), "rollback");
  EXPECT_STREQ(so::to_string(so::TraceKind::kFaultInjected),
               "fault_injected");
}

// ---- timer ----------------------------------------------------------------

TEST(Timer, RecordsIntoHistogram) {
  so::MetricsRegistry reg;
  {
    so::ScopedTimer t(&reg, "test.span_ms");
    EXPECT_GE(t.elapsed_ns(), 0u);
  }
  so::Histogram& h = reg.histogram("test.span_ms", so::buckets::kLatencyMs);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Timer, NullRegistryAndStopAreInert) {
  so::ScopedTimer t(nullptr, "test.unused");
  const double ms = t.stop();
  EXPECT_GE(ms, 0.0);
  // A stopped timer must not double-record on destruction.
  so::MetricsRegistry reg;
  {
    so::ScopedTimer u(&reg, "test.once_ms");
    u.stop();
  }
  EXPECT_EQ(reg.histogram("test.once_ms", so::buckets::kLatencyMs).count(),
            1u);
}

// ---- RunContext -----------------------------------------------------------

TEST(RunContext, ValidatesThreadCount) {
  se::RunContext ctx;
  EXPECT_NO_THROW(ctx.validate());
  ctx.exec.threads = se::RunContext::kMaxThreads + 1;
  EXPECT_THROW(ctx.validate(), std::invalid_argument);
}

TEST(RunContext, SinkPrefersExplicitRegistryThenDefault) {
  DefaultRegistryGuard guard;
  so::set_default_registry(nullptr);
  se::RunContext ctx;
  EXPECT_EQ(ctx.sink(), nullptr);

  so::MetricsRegistry fallback;
  so::set_default_registry(&fallback);
  EXPECT_EQ(ctx.sink(), &fallback);

  so::MetricsRegistry explicit_reg;
  ctx.metrics = &explicit_reg;
  EXPECT_EQ(ctx.sink(), &explicit_reg);
}

TEST(RunContext, SerialHelper) {
  const se::RunContext ctx = se::RunContext::serial();
  EXPECT_EQ(ctx.resolved_threads(), 1u);
  EXPECT_FALSE(ctx.strict);
}

// ---- layer instrumentation ------------------------------------------------

TEST(ObsLinalg, BicgstabPublishesCounters) {
  DefaultRegistryGuard guard;
  so::set_default_registry(nullptr);
  // 2x2 diagonally dominant system.
  sl::SparseBuilder builder(2);
  builder.add(0, 0, 4.0);
  builder.add(0, 1, 1.0);
  builder.add(1, 0, 1.0);
  builder.add(1, 1, 3.0);
  const sl::CsrMatrix a(builder);
  const std::vector<double> b = {1.0, 2.0};

  so::MetricsRegistry reg;
  sl::BicgstabOptions options;
  options.metrics = &reg;
  const auto result = sl::bicgstab(a, b, options);
  EXPECT_TRUE(result.converged);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter(so::names::kBicgstabSolves), 1u);
  EXPECT_EQ(snap.counter(so::names::kBicgstabIterations),
            result.iterations);
  EXPECT_EQ(snap.counter(so::names::kBicgstabFailures), 0u);
}

TEST(ObsTcad, SweepPublishesCountersAndTrace) {
  DefaultRegistryGuard guard;
  so::set_default_registry(nullptr);
  so::MetricsRegistry reg;
  so::TraceRing ring(512);
  se::RunContext ctx;
  ctx.metrics = &reg;
  ctx.trace = &ring;

  st::TcadDevice dev(nfet_90(), coarse_mesh(), {}, ctx);
  const st::SweepResult sweep = dev.id_vg(0.25, 0.0, 0.45, 6);
  EXPECT_TRUE(sweep.all_converged());

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter(so::names::kSweepPointsAttempted), 6u);
  EXPECT_EQ(snap.counter(so::names::kSweepPointsConverged), 6u);
  EXPECT_EQ(snap.counter(so::names::kSweepPointsFailed), 0u);
  EXPECT_GT(snap.counter(so::names::kGummelSolves), 0u);
  EXPECT_GT(snap.counter(so::names::kGummelOuterIterations),
            snap.counter(so::names::kGummelSolves));
  EXPECT_GT(snap.counter(so::names::kPoissonNewtonIterations), 0u);
  EXPECT_GT(snap.counter(so::names::kContinuitySolves), 0u);

  const auto counts = ring.kind_counts();
  EXPECT_EQ(counts[static_cast<std::size_t>(so::TraceKind::kSweepPoint)],
            6u);
  EXPECT_GT(counts[static_cast<std::size_t>(so::TraceKind::kStageEnter)],
            0u);
}

TEST(ObsTcad, FaultInjectionLeavesTraceEvidence) {
  DefaultRegistryGuard guard;
  so::set_default_registry(nullptr);
  so::MetricsRegistry reg;
  so::TraceRing ring(512);
  se::RunContext ctx;
  ctx.metrics = &reg;
  ctx.trace = &ring;

  st::GummelOptions faulty;
  faulty.fault.stage = st::SolveStage::kPoisson;
  faulty.fault.count = 1'000'000'000;
  faulty.fault.min_bias = 0.19;
  faulty.fault.max_bias = 0.21;
  st::TcadDevice dev(nfet_90(), coarse_mesh(), faulty, ctx);
  const st::SweepResult sweep = dev.id_vg(0.25, 0.0, 0.45, 10);
  ASSERT_EQ(sweep.report.failures.size(), 1u);

  const auto snap = reg.snapshot();
  EXPECT_GT(snap.counter(so::names::kGummelFaultsInjected), 0u);
  EXPECT_GT(snap.counter(so::names::kGummelRetries), 0u);
  EXPECT_GT(snap.counter(so::names::kGummelRollbacks), 0u);
  EXPECT_GT(snap.counter(so::names::kGummelStepHalvings), 0u);
  EXPECT_EQ(snap.counter(so::names::kGummelFailedSolves), 1u);
  EXPECT_EQ(snap.counter(so::names::kSweepPointsFailed), 1u);

  const auto counts = ring.kind_counts();
  EXPECT_GT(
      counts[static_cast<std::size_t>(so::TraceKind::kFaultInjected)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(so::TraceKind::kRollback)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(so::TraceKind::kStepHalve)],
            0u);
  EXPECT_GT(counts[static_cast<std::size_t>(so::TraceKind::kPointFailed)],
            0u);
}

// ---- determinism contract -------------------------------------------------
// Suite names start with "Parallel" so tools/check.sh's TSAN pass picks
// them up (-R "^(Exec|TaskPool|Parallel)").

TEST(ParallelObs, CounterTotalsBitwiseIdenticalAcrossThreadCounts) {
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kPerTask = 1000;
  std::vector<std::uint64_t> totals;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    so::MetricsRegistry reg;
    so::Counter& c = reg.counter("parallel.total");
    se::rethrow_first(se::parallel_for(
        kTasks,
        [&](std::size_t k) {
          for (std::uint64_t i = 0; i < kPerTask; ++i) {
            c.add(k % 3 == 0 ? 2 : 1);
          }
        },
        se::ExecPolicy{threads}));
    totals.push_back(reg.snapshot().counter("parallel.total"));
  }
  for (std::size_t i = 1; i < totals.size(); ++i) {
    EXPECT_EQ(totals[i], totals[0]) << "thread-count variant " << i;
  }
}

TEST(ParallelObs, SolverCountersMatchSerialAtFourThreads) {
  // The full contract: every integer solver counter and histogram
  // bucket tally from a 2-node tcad_validation must be bitwise equal
  // between the serial path and the 4-thread pool. (Pool metrics and
  // float timing sums are diagnostic-only and deliberately excluded.)
  DefaultRegistryGuard guard;
  so::set_default_registry(nullptr);
  const auto run_with = [](so::MetricsRegistry& reg,
                           const se::ExecPolicy& policy) {
    sco::ScalingStudy study;
    sco::TcadValidationOptions opt;
    opt.nodes = {0, 1};
    opt.points = 6;
    opt.mesh = coarse_mesh();
    opt.run.exec = policy;
    opt.run.metrics = &reg;
    const auto results = study.tcad_validation(opt);
    ASSERT_EQ(results.size(), 2u);
  };

  so::MetricsRegistry serial_reg, pooled_reg;
  run_with(serial_reg, se::ExecPolicy::serial());
  run_with(pooled_reg, se::ExecPolicy{4});

  const auto serial = serial_reg.snapshot();
  const auto pooled = pooled_reg.snapshot();
  ASSERT_EQ(serial.counters.size(), pooled.counters.size());
  for (const auto& [name, value] : serial.counters) {
    EXPECT_EQ(pooled.counter(name), value) << name;
  }
  ASSERT_EQ(serial.histograms.size(), pooled.histograms.size());
  for (std::size_t h = 0; h < serial.histograms.size(); ++h) {
    const auto& a = serial.histograms[h];
    const auto& b = pooled.histograms[h];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.count, b.count) << a.name;
    if (a.name == so::names::kGummelIterationsPerSolve) {
      // Iteration counts are integers: bucket tallies match exactly.
      EXPECT_EQ(a.buckets, b.buckets) << a.name;
    }
  }
}

// ---- overhead -------------------------------------------------------------

TEST(ObsOverhead, DisabledRegistryCostsNearNothing) {
  // With no registry installed anywhere, the instrumented sweep must
  // not be slower than itself by more than noise. Run the same coarse
  // solve with telemetry on and off; the "off" run may not take twice
  // the "on" run plus margin (a catastrophic regression like an
  // always-taken mutex would blow far past this).
  DefaultRegistryGuard guard;
  so::set_default_registry(nullptr);

  const auto timed_sweep = [&](const se::RunContext& ctx) {
    const auto start = std::chrono::steady_clock::now();
    st::TcadDevice dev(nfet_90(), coarse_mesh(), {}, ctx);
    const st::SweepResult sweep = dev.id_vg(0.25, 0.0, 0.45, 6);
    EXPECT_TRUE(sweep.all_converged());
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  so::MetricsRegistry reg;
  se::RunContext with_metrics;
  with_metrics.metrics = &reg;
  const double on_ms = timed_sweep(with_metrics);
  const double off_ms = timed_sweep(se::RunContext{});
  EXPECT_LT(off_ms, 2.0 * on_ms + 50.0)
      << "disabled-telemetry sweep took " << off_ms << " ms vs " << on_ms
      << " ms with a registry";
  // And nothing was recorded anywhere for the disabled run: the only
  // registry in the process saw exactly one sweep's worth of points.
  EXPECT_EQ(reg.snapshot().counter(so::names::kSweepPointsAttempted), 6u);
}

// ---- span profiler --------------------------------------------------------

TEST(Profiler, NestedSpansRecordDepthParentAndOrder) {
  so::SpanProfiler prof;
  {
    so::ScopedSpan outer(&prof, "outer");
    {
      so::ScopedSpan inner(&prof, "inner");
    }
    {
      so::ScopedSpan inner2(&prof, "inner");
    }
  }
  const so::ProfileSnapshot snap = prof.snapshot();
  ASSERT_EQ(snap.spans.size(), 3u);
  EXPECT_EQ(snap.dropped, 0u);
  // Sorted by open time: outer first, then the two inner spans.
  EXPECT_STREQ(snap.spans[0].label, "outer");
  EXPECT_EQ(snap.spans[0].depth, 0u);
  EXPECT_EQ(snap.spans[0].parent, 0u);
  for (std::size_t i : {std::size_t{1}, std::size_t{2}}) {
    EXPECT_STREQ(snap.spans[i].label, "inner");
    EXPECT_EQ(snap.spans[i].depth, 1u);
    EXPECT_EQ(snap.spans[i].parent, snap.spans[0].seq);
    EXPECT_LE(snap.spans[0].t0_ns, snap.spans[i].t0_ns);
    EXPECT_GE(snap.spans[0].t1_ns, snap.spans[i].t1_ns);
  }
  EXPECT_GE(snap.wall_ns(), snap.spans[0].t1_ns - snap.spans[0].t0_ns);
}

TEST(Profiler, OverflowCountsDroppedInsteadOfGrowing) {
  so::SpanProfiler prof(2);
  for (int i = 0; i < 5; ++i) {
    so::ScopedSpan span(&prof, "s");
  }
  const so::ProfileSnapshot snap = prof.snapshot();
  EXPECT_EQ(snap.spans.size(), 2u);
  EXPECT_EQ(snap.dropped, 3u);
  EXPECT_THROW(so::SpanProfiler(0), std::invalid_argument);
}

TEST(Profiler, NullProfilerSpansAreInert) {
  DefaultProfilerGuard guard;
  so::set_default_profiler(nullptr);
  so::ScopedSpan span(nullptr, "ignored");
  // Reaching here without touching any storage is the contract.
  SUCCEED();
}

TEST(Profiler, RollupComputesSelfTimeAndPercent) {
  so::SpanProfiler prof;
  {
    so::ScopedSpan outer(&prof, "outer");
    so::ScopedSpan inner(&prof, "inner");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const so::ProfileSnapshot snap = prof.snapshot();
  const auto rows = snap.rollup();
  ASSERT_EQ(rows.size(), 2u);
  std::map<std::string, so::ProfileRollupRow> by_label;
  for (const auto& r : rows) by_label[r.label] = r;
  ASSERT_TRUE(by_label.count("outer"));
  ASSERT_TRUE(by_label.count("inner"));
  const auto& outer = by_label["outer"];
  const auto& inner = by_label["inner"];
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(inner.count, 1u);
  EXPECT_EQ(outer.min_depth, 0u);
  EXPECT_EQ(inner.min_depth, 1u);
  // Outer's self time excludes the inner span entirely.
  EXPECT_NEAR(outer.self_ms, outer.total_ms - inner.total_ms, 1e-9);
  EXPECT_NEAR(inner.self_ms, inner.total_ms, 1e-9);
  EXPECT_GT(outer.pct_of_wall, 99.0);

  const std::string table = snap.rollup_table();
  EXPECT_NE(table.find("span"), std::string::npos);
  EXPECT_NE(table.find("outer"), std::string::npos);
  EXPECT_NE(table.find("  inner"), std::string::npos);  // depth-indented
}

TEST(Profiler, LabelAndEdgeCountsWalkParentChains) {
  so::SpanProfiler prof;
  for (int i = 0; i < 3; ++i) {
    so::ScopedSpan a(&prof, "a");
    so::ScopedSpan b(&prof, "b");
  }
  const so::ProfileSnapshot snap = prof.snapshot();
  const auto labels = snap.label_counts();
  EXPECT_EQ(labels.at("a"), 3u);
  EXPECT_EQ(labels.at("b"), 3u);
  const auto edges = snap.edge_counts();
  EXPECT_EQ(edges.at({"", "a"}), 3u);
  EXPECT_EQ(edges.at({"a", "b"}), 3u);
}

TEST(Profiler, DefaultProfilerInstallAndFallback) {
  DefaultProfilerGuard guard;
  so::set_default_profiler(nullptr);
  EXPECT_EQ(so::default_profiler(), nullptr);
  se::RunContext ctx;
  EXPECT_EQ(ctx.span_sink(), nullptr);

  so::SpanProfiler fallback;
  so::set_default_profiler(&fallback);
  EXPECT_EQ(ctx.span_sink(), &fallback);

  so::SpanProfiler explicit_prof;
  ctx.profiler = &explicit_prof;
  EXPECT_EQ(ctx.span_sink(), &explicit_prof);
}

// ---- convergence recorder -------------------------------------------------

TEST(Convergence, RecorderCapacityAndDropAccounting) {
  EXPECT_THROW(so::ConvergenceRecorder(0), std::invalid_argument);
  so::ConvergenceRecorder rec(2);
  for (int i = 0; i < 3; ++i) {
    so::SolveTrajectory t;
    t.vg = 0.1 * i;
    t.samples.push_back({1, 1e-3, 5, 1e23, 1e-4});
    rec.commit(std::move(t));
  }
  EXPECT_EQ(rec.capacity(), 2u);
  EXPECT_EQ(rec.total_solves(), 3u);
  EXPECT_EQ(rec.dropped_solves(), 1u);
  const auto solves = rec.snapshot();
  ASSERT_EQ(solves.size(), 2u);
  EXPECT_DOUBLE_EQ(solves[1].vg, 0.1);
  rec.clear();
  EXPECT_EQ(rec.total_solves(), 0u);
  EXPECT_EQ(rec.snapshot().size(), 0u);
}

TEST(ObsTcad, ConvergenceRecorderCapturesResidualDecay) {
  DefaultRegistryGuard guard;
  so::set_default_registry(nullptr);
  so::ConvergenceRecorder rec;
  se::RunContext ctx;
  ctx.convergence = &rec;
  st::GummelOptions gummel;
  st::TcadDevice dev(nfet_90(), coarse_mesh(), gummel, ctx);
  const st::SweepResult sweep = dev.id_vg(0.25, 0.0, 0.3, 4);
  ASSERT_TRUE(sweep.all_converged());

  const auto solves = rec.snapshot();
  ASSERT_FALSE(solves.empty());
  EXPECT_EQ(rec.total_solves(), solves.size());
  for (const auto& solve : solves) {
    ASSERT_FALSE(solve.samples.empty());
    ASSERT_TRUE(solve.converged);
    // Iterations are 1-based and consecutive; the final outer update is
    // below the solver's convergence tolerance.
    for (std::size_t i = 0; i < solve.samples.size(); ++i) {
      EXPECT_EQ(solve.samples[i].iteration, i + 1);
      EXPECT_GT(solve.samples[i].poisson_iterations, 0u);
      EXPECT_TRUE(std::isfinite(solve.samples[i].psi_update));
      EXPECT_GT(solve.samples[i].continuity_max_density, 0.0);
    }
    EXPECT_LT(solve.samples.back().psi_update, gummel.psi_tolerance);
  }
  // The recorder saw every Gummel solve: the equilibrium solve plus at
  // least one continuation solve per attempted sweep point.
  EXPECT_GE(solves.size(), 1u + sweep.report.attempted);
}

TEST(ObsTcad, ConvergenceRecorderKeepsFailedSolvePrefix) {
  DefaultRegistryGuard guard;
  so::set_default_registry(nullptr);
  so::ConvergenceRecorder rec;
  se::RunContext ctx;
  ctx.convergence = &rec;
  // Inject an unhealable Poisson failure at iteration 0 in a narrow
  // bias window: those solves abort with a partial (NaN-tailed) sample.
  st::GummelOptions faulty;
  faulty.fault.stage = st::SolveStage::kPoisson;
  faulty.fault.at_iteration = 0;
  faulty.fault.count = 1'000'000'000;
  faulty.fault.min_bias = 0.19;
  faulty.fault.max_bias = 0.21;
  st::TcadDevice dev(nfet_90(), coarse_mesh(), faulty, ctx);
  const st::SweepResult sweep = dev.id_vg(0.25, 0.0, 0.45, 10);
  EXPECT_FALSE(sweep.all_converged());

  bool saw_failed = false;
  for (const auto& solve : rec.snapshot()) {
    if (solve.converged) continue;
    saw_failed = true;
    ASSERT_FALSE(solve.samples.empty());
    const auto& last = solve.samples.back();
    // The Poisson stage failed, so the later stages never ran.
    EXPECT_TRUE(std::isnan(last.continuity_max_density));
    EXPECT_TRUE(std::isnan(last.psi_update));
  }
  EXPECT_TRUE(saw_failed);
}

// ---- trace thread attribution (satellite: kTaskSpan tid fix) --------------

TEST(Trace, EventsCarryThreadOrdinal) {
  so::TraceRing ring(8);
  ring.record(so::TraceKind::kRetry, "same-thread");
  ring.record(so::TraceKind::kRetry, "same-thread");
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_EQ(events[0].tid, so::thread_ordinal());
}

TEST(ParallelTrace, TaskSpanEventsAttributeDistinctThreads) {
  so::TraceRing ring(16);
  // Two tasks that rendezvous: neither finishes until both have
  // started, so a 2-thread pool must run them on distinct workers.
  std::atomic<int> started{0};
  se::rethrow_first(se::parallel_for(
      2,
      [&](std::size_t) {
        started.fetch_add(1);
        while (started.load() < 2) std::this_thread::yield();
      },
      se::ExecPolicy{2}, se::TaskObs{nullptr, &ring}));
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 2u);
  std::set<std::uint32_t> tids;
  std::set<double> indices;
  for (const auto& ev : events) {
    EXPECT_EQ(ev.kind, so::TraceKind::kTaskSpan);
    EXPECT_STREQ(ev.what, "parallel_for");
    EXPECT_GE(ev.b, 0.0);  // duration ms
    tids.insert(ev.tid);
    indices.insert(ev.a);
  }
  EXPECT_EQ(tids.size(), 2u) << "task spans attributed to one thread";
  EXPECT_EQ(indices, (std::set<double>{0.0, 1.0}));
}

TEST(ParallelTrace, SerialPathRecordsTaskSpansToo) {
  // Task-event counts are part of the determinism contract: the serial
  // path must emit exactly the events the pooled path emits.
  so::TraceRing ring(16);
  se::rethrow_first(se::parallel_for(
      3, [](std::size_t) {}, se::ExecPolicy::serial(),
      se::TaskObs{nullptr, &ring}));
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 3u);
  for (const auto& ev : events) {
    EXPECT_EQ(ev.kind, so::TraceKind::kTaskSpan);
  }
}

// ---- profiler determinism + thread safety ---------------------------------

TEST(ParallelProfiler, ConcurrentRecordingMergesEveryThread) {
  so::SpanProfiler prof;
  constexpr std::size_t kTasks = 32;
  se::rethrow_first(se::parallel_for(
      kTasks,
      [&](std::size_t) {
        so::ScopedSpan outer(&prof, "task.outer");
        so::ScopedSpan inner(&prof, "task.inner");
      },
      se::ExecPolicy{4}));
  const so::ProfileSnapshot snap = prof.snapshot();
  EXPECT_EQ(snap.dropped, 0u);
  const auto labels = snap.label_counts();
  EXPECT_EQ(labels.at("task.outer"), kTasks);
  EXPECT_EQ(labels.at("task.inner"), kTasks);
  const auto edges = snap.edge_counts();
  EXPECT_EQ(edges.at({"task.outer", "task.inner"}), kTasks);
}

TEST(ParallelProfiler, SnapshotWhileRecordingIsSafe) {
  so::SpanProfiler prof;
  std::atomic<bool> stop{false};
  std::thread recorder([&] {
    while (!stop.load()) {
      so::ScopedSpan span(&prof, "live");
    }
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const so::ProfileSnapshot snap = prof.snapshot();
    // Published span counts are monotone and every record is complete.
    EXPECT_GE(snap.spans.size() + snap.dropped, last);
    last = snap.spans.size() + snap.dropped;
    for (const auto& s : snap.spans) {
      EXPECT_STREQ(s.label, "live");
      EXPECT_GE(s.t1_ns, s.t0_ns);
    }
  }
  stop.store(true);
  recorder.join();
}

TEST(ParallelProfiler, SpanCountsBitwiseIdenticalAcrossThreadCounts) {
  // The §10.3 contract extended to nesting: per-label span tallies and
  // per-(parent,label) edge tallies from a 2-node tcad_validation are
  // identical at 1, 2 and 4 threads. Timestamps/durations/tids are
  // wall-clock artifacts and deliberately not compared.
  DefaultRegistryGuard guard;
  DefaultProfilerGuard prof_guard;
  so::set_default_registry(nullptr);
  so::set_default_profiler(nullptr);

  using Labels = std::map<std::string, std::uint64_t>;
  using Edges = std::map<std::pair<std::string, std::string>, std::uint64_t>;
  const auto run_with = [](const se::ExecPolicy& policy, Labels& labels,
                           Edges& edges) {
    so::SpanProfiler prof;
    sco::ScalingStudy study;
    sco::TcadValidationOptions opt;
    opt.nodes = {0, 1};
    opt.points = 6;
    opt.mesh = coarse_mesh();
    opt.run.exec = policy;
    opt.run.profiler = &prof;
    const auto results = study.tcad_validation(opt);
    ASSERT_EQ(results.size(), 2u);
    const so::ProfileSnapshot snap = prof.snapshot();
    ASSERT_EQ(snap.dropped, 0u);
    labels = snap.label_counts();
    edges = snap.edge_counts();
  };

  Labels serial_labels;
  Edges serial_edges;
  run_with(se::ExecPolicy::serial(), serial_labels, serial_edges);

  // The expected shape, not just self-consistency: every study node ran
  // in a task span, each sweep point nests under its node, and the
  // direct solver is the leaf under both Gummel stages.
  namespace spans = so::names::spans;
  EXPECT_EQ(serial_labels.at(spans::kTask), 2u);
  EXPECT_EQ(serial_labels.at(spans::kStudyNode), 2u);
  EXPECT_EQ(serial_labels.at(spans::kSweepPoint), 12u);
  EXPECT_EQ(serial_edges.at({"", spans::kTask}), 2u);
  EXPECT_EQ(serial_edges.at({spans::kTask, spans::kStudyNode}), 2u);
  EXPECT_EQ(serial_edges.at({spans::kStudyNode, spans::kSweepPoint}), 12u);
  EXPECT_GT(serial_edges.at({spans::kGummelPoisson, spans::kBandedLuSolve}),
            0u);
  EXPECT_GT(
      serial_edges.at({spans::kGummelContinuity, spans::kBandedLuSolve}),
      0u);

  for (const std::size_t threads : {2u, 4u}) {
    Labels labels;
    Edges edges;
    run_with(se::ExecPolicy{threads}, labels, edges);
    EXPECT_EQ(labels, serial_labels) << "at " << threads << " threads";
    EXPECT_EQ(edges, serial_edges) << "at " << threads << " threads";
  }
}
