#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "compact/device_spec.h"
#include "core/scaling_study.h"
#include "exec/parallel.h"
#include "exec/run_context.h"
#include "linalg/bicgstab.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "tcad/device_sim.h"

namespace so = subscale::obs;
namespace se = subscale::exec;
namespace sl = subscale::linalg;
namespace st = subscale::tcad;
namespace sco = subscale::core;

namespace {

/// Restore the process-default registry on scope exit so no test leaks
/// an installed registry into its neighbours.
struct DefaultRegistryGuard {
  so::MetricsRegistry* previous = so::default_registry();
  ~DefaultRegistryGuard() { so::set_default_registry(previous); }
};

st::MeshOptions coarse_mesh() {
  st::MeshOptions mesh;
  mesh.surface_spacing = 0.6e-9;
  mesh.junction_spacing = 1.5e-9;
  return mesh;
}

subscale::compact::DeviceSpec nfet_90() {
  return subscale::compact::make_spec_from_table(
      subscale::doping::Polarity::kNfet, 65, 2.10, 1.52e18, 3.63e18, 1.2,
      1.0);
}

}  // namespace

// ---- instruments ----------------------------------------------------------

TEST(Metrics, CounterAccumulatesAndResets) {
  so::MetricsRegistry reg;
  so::Counter& c = reg.counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&reg.counter("test.counter"), &c);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeSetAndSetMax) {
  so::MetricsRegistry reg;
  so::Gauge& g = reg.gauge("test.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set_max(1.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
}

TEST(Metrics, HistogramBucketsAndOverflow) {
  so::MetricsRegistry reg;
  so::Histogram& h = reg.histogram("test.iters", so::buckets::kIterations);
  h.record(1.0);    // first bucket (<= 1)
  h.record(1.0);
  h.record(5000.0);  // beyond the last bound: overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 5002.0);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(so::buckets::kIterations.count), 1u);  // overflow
}

TEST(Metrics, HistogramLayoutConflictThrows) {
  so::MetricsRegistry reg;
  reg.histogram("test.h", so::buckets::kIterations);
  EXPECT_NO_THROW(reg.histogram("test.h", so::buckets::kIterations));
  EXPECT_THROW(reg.histogram("test.h", so::buckets::kLatencyMs),
               std::invalid_argument);
}

TEST(Metrics, SnapshotCarriesEveryInstrument) {
  so::MetricsRegistry reg;
  reg.counter("a.count").add(2);
  reg.gauge("a.gauge").set(1.25);
  reg.histogram("a.hist", so::buckets::kLatencyMs).record(3.0);
  const so::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("a.count"), 2u);
  EXPECT_EQ(snap.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge("a.gauge"), 1.25);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "a.hist");
  EXPECT_EQ(snap.histograms[0].count, 1u);
  // Buckets include the +inf overflow slot.
  EXPECT_EQ(snap.histograms[0].buckets.size(),
            so::buckets::kLatencyMs.count + 1);
}

TEST(Metrics, PreregisterStandardCoversTheSchema) {
  so::MetricsRegistry reg;
  so::names::preregister_standard(reg);
  const so::MetricsSnapshot snap = reg.snapshot();
  EXPECT_GE(snap.counters.size(), 20u);
  EXPECT_GE(snap.gauges.size(), 3u);
  EXPECT_GE(snap.histograms.size(), 3u);
  // Everything preregisters at zero.
  for (const auto& [name, value] : snap.counters) {
    EXPECT_EQ(value, 0u) << name;
  }
}

// ---- trace ring -----------------------------------------------------------

TEST(Trace, RingWrapsAndCounts) {
  so::TraceRing ring(4);
  for (int i = 0; i < 6; ++i) {
    ring.record(so::TraceKind::kRetry, "stage", static_cast<double>(i));
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.total_recorded(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: events 2..5 survive.
  EXPECT_DOUBLE_EQ(events.front().a, 2.0);
  EXPECT_DOUBLE_EQ(events.back().a, 5.0);
  // kind_counts tallies retained events only (the ring holds 4).
  const auto counts = ring.kind_counts();
  EXPECT_EQ(counts[static_cast<std::size_t>(so::TraceKind::kRetry)], 4u);
  ring.clear();
  EXPECT_EQ(ring.snapshot().size(), 0u);
}

TEST(Trace, KindNamesAreStable) {
  EXPECT_STREQ(so::to_string(so::TraceKind::kStepHalve), "step_halve");
  EXPECT_STREQ(so::to_string(so::TraceKind::kRollback), "rollback");
  EXPECT_STREQ(so::to_string(so::TraceKind::kFaultInjected),
               "fault_injected");
}

// ---- timer ----------------------------------------------------------------

TEST(Timer, RecordsIntoHistogram) {
  so::MetricsRegistry reg;
  {
    so::ScopedTimer t(&reg, "test.span_ms");
    EXPECT_GE(t.elapsed_ns(), 0u);
  }
  so::Histogram& h = reg.histogram("test.span_ms", so::buckets::kLatencyMs);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Timer, NullRegistryAndStopAreInert) {
  so::ScopedTimer t(nullptr, "test.unused");
  const double ms = t.stop();
  EXPECT_GE(ms, 0.0);
  // A stopped timer must not double-record on destruction.
  so::MetricsRegistry reg;
  {
    so::ScopedTimer u(&reg, "test.once_ms");
    u.stop();
  }
  EXPECT_EQ(reg.histogram("test.once_ms", so::buckets::kLatencyMs).count(),
            1u);
}

// ---- RunContext -----------------------------------------------------------

TEST(RunContext, ValidatesThreadCount) {
  se::RunContext ctx;
  EXPECT_NO_THROW(ctx.validate());
  ctx.exec.threads = se::RunContext::kMaxThreads + 1;
  EXPECT_THROW(ctx.validate(), std::invalid_argument);
}

TEST(RunContext, SinkPrefersExplicitRegistryThenDefault) {
  DefaultRegistryGuard guard;
  so::set_default_registry(nullptr);
  se::RunContext ctx;
  EXPECT_EQ(ctx.sink(), nullptr);

  so::MetricsRegistry fallback;
  so::set_default_registry(&fallback);
  EXPECT_EQ(ctx.sink(), &fallback);

  so::MetricsRegistry explicit_reg;
  ctx.metrics = &explicit_reg;
  EXPECT_EQ(ctx.sink(), &explicit_reg);
}

TEST(RunContext, SerialHelper) {
  const se::RunContext ctx = se::RunContext::serial();
  EXPECT_EQ(ctx.resolved_threads(), 1u);
  EXPECT_FALSE(ctx.strict);
}

// ---- layer instrumentation ------------------------------------------------

TEST(ObsLinalg, BicgstabPublishesCounters) {
  DefaultRegistryGuard guard;
  so::set_default_registry(nullptr);
  // 2x2 diagonally dominant system.
  sl::SparseBuilder builder(2);
  builder.add(0, 0, 4.0);
  builder.add(0, 1, 1.0);
  builder.add(1, 0, 1.0);
  builder.add(1, 1, 3.0);
  const sl::CsrMatrix a(builder);
  const std::vector<double> b = {1.0, 2.0};

  so::MetricsRegistry reg;
  sl::BicgstabOptions options;
  options.metrics = &reg;
  const auto result = sl::bicgstab(a, b, options);
  EXPECT_TRUE(result.converged);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter(so::names::kBicgstabSolves), 1u);
  EXPECT_EQ(snap.counter(so::names::kBicgstabIterations),
            result.iterations);
  EXPECT_EQ(snap.counter(so::names::kBicgstabFailures), 0u);
}

TEST(ObsTcad, SweepPublishesCountersAndTrace) {
  DefaultRegistryGuard guard;
  so::set_default_registry(nullptr);
  so::MetricsRegistry reg;
  so::TraceRing ring(512);
  se::RunContext ctx;
  ctx.metrics = &reg;
  ctx.trace = &ring;

  st::TcadDevice dev(nfet_90(), coarse_mesh(), {}, ctx);
  const st::SweepResult sweep = dev.id_vg(0.25, 0.0, 0.45, 6);
  EXPECT_TRUE(sweep.all_converged());

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter(so::names::kSweepPointsAttempted), 6u);
  EXPECT_EQ(snap.counter(so::names::kSweepPointsConverged), 6u);
  EXPECT_EQ(snap.counter(so::names::kSweepPointsFailed), 0u);
  EXPECT_GT(snap.counter(so::names::kGummelSolves), 0u);
  EXPECT_GT(snap.counter(so::names::kGummelOuterIterations),
            snap.counter(so::names::kGummelSolves));
  EXPECT_GT(snap.counter(so::names::kPoissonNewtonIterations), 0u);
  EXPECT_GT(snap.counter(so::names::kContinuitySolves), 0u);

  const auto counts = ring.kind_counts();
  EXPECT_EQ(counts[static_cast<std::size_t>(so::TraceKind::kSweepPoint)],
            6u);
  EXPECT_GT(counts[static_cast<std::size_t>(so::TraceKind::kStageEnter)],
            0u);
}

TEST(ObsTcad, FaultInjectionLeavesTraceEvidence) {
  DefaultRegistryGuard guard;
  so::set_default_registry(nullptr);
  so::MetricsRegistry reg;
  so::TraceRing ring(512);
  se::RunContext ctx;
  ctx.metrics = &reg;
  ctx.trace = &ring;

  st::GummelOptions faulty;
  faulty.fault.stage = st::SolveStage::kPoisson;
  faulty.fault.count = 1'000'000'000;
  faulty.fault.min_bias = 0.19;
  faulty.fault.max_bias = 0.21;
  st::TcadDevice dev(nfet_90(), coarse_mesh(), faulty, ctx);
  const st::SweepResult sweep = dev.id_vg(0.25, 0.0, 0.45, 10);
  ASSERT_EQ(sweep.report.failures.size(), 1u);

  const auto snap = reg.snapshot();
  EXPECT_GT(snap.counter(so::names::kGummelFaultsInjected), 0u);
  EXPECT_GT(snap.counter(so::names::kGummelRetries), 0u);
  EXPECT_GT(snap.counter(so::names::kGummelRollbacks), 0u);
  EXPECT_GT(snap.counter(so::names::kGummelStepHalvings), 0u);
  EXPECT_EQ(snap.counter(so::names::kGummelFailedSolves), 1u);
  EXPECT_EQ(snap.counter(so::names::kSweepPointsFailed), 1u);

  const auto counts = ring.kind_counts();
  EXPECT_GT(
      counts[static_cast<std::size_t>(so::TraceKind::kFaultInjected)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(so::TraceKind::kRollback)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(so::TraceKind::kStepHalve)],
            0u);
  EXPECT_GT(counts[static_cast<std::size_t>(so::TraceKind::kPointFailed)],
            0u);
}

// ---- determinism contract -------------------------------------------------
// Suite names start with "Parallel" so tools/check.sh's TSAN pass picks
// them up (-R "^(Exec|TaskPool|Parallel)").

TEST(ParallelObs, CounterTotalsBitwiseIdenticalAcrossThreadCounts) {
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kPerTask = 1000;
  std::vector<std::uint64_t> totals;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    so::MetricsRegistry reg;
    so::Counter& c = reg.counter("parallel.total");
    se::rethrow_first(se::parallel_for(
        kTasks,
        [&](std::size_t k) {
          for (std::uint64_t i = 0; i < kPerTask; ++i) {
            c.add(k % 3 == 0 ? 2 : 1);
          }
        },
        se::ExecPolicy{threads}));
    totals.push_back(reg.snapshot().counter("parallel.total"));
  }
  for (std::size_t i = 1; i < totals.size(); ++i) {
    EXPECT_EQ(totals[i], totals[0]) << "thread-count variant " << i;
  }
}

TEST(ParallelObs, SolverCountersMatchSerialAtFourThreads) {
  // The full contract: every integer solver counter and histogram
  // bucket tally from a 2-node tcad_validation must be bitwise equal
  // between the serial path and the 4-thread pool. (Pool metrics and
  // float timing sums are diagnostic-only and deliberately excluded.)
  DefaultRegistryGuard guard;
  so::set_default_registry(nullptr);
  const auto run_with = [](so::MetricsRegistry& reg,
                           const se::ExecPolicy& policy) {
    sco::ScalingStudy study;
    sco::TcadValidationOptions opt;
    opt.nodes = {0, 1};
    opt.points = 6;
    opt.mesh = coarse_mesh();
    opt.run.exec = policy;
    opt.run.metrics = &reg;
    const auto results = study.tcad_validation(opt);
    ASSERT_EQ(results.size(), 2u);
  };

  so::MetricsRegistry serial_reg, pooled_reg;
  run_with(serial_reg, se::ExecPolicy::serial());
  run_with(pooled_reg, se::ExecPolicy{4});

  const auto serial = serial_reg.snapshot();
  const auto pooled = pooled_reg.snapshot();
  ASSERT_EQ(serial.counters.size(), pooled.counters.size());
  for (const auto& [name, value] : serial.counters) {
    EXPECT_EQ(pooled.counter(name), value) << name;
  }
  ASSERT_EQ(serial.histograms.size(), pooled.histograms.size());
  for (std::size_t h = 0; h < serial.histograms.size(); ++h) {
    const auto& a = serial.histograms[h];
    const auto& b = pooled.histograms[h];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.count, b.count) << a.name;
    if (a.name == so::names::kGummelIterationsPerSolve) {
      // Iteration counts are integers: bucket tallies match exactly.
      EXPECT_EQ(a.buckets, b.buckets) << a.name;
    }
  }
}

// ---- overhead -------------------------------------------------------------

TEST(ObsOverhead, DisabledRegistryCostsNearNothing) {
  // With no registry installed anywhere, the instrumented sweep must
  // not be slower than itself by more than noise. Run the same coarse
  // solve with telemetry on and off; the "off" run may not take twice
  // the "on" run plus margin (a catastrophic regression like an
  // always-taken mutex would blow far past this).
  DefaultRegistryGuard guard;
  so::set_default_registry(nullptr);

  const auto timed_sweep = [&](const se::RunContext& ctx) {
    const auto start = std::chrono::steady_clock::now();
    st::TcadDevice dev(nfet_90(), coarse_mesh(), {}, ctx);
    const st::SweepResult sweep = dev.id_vg(0.25, 0.0, 0.45, 6);
    EXPECT_TRUE(sweep.all_converged());
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  so::MetricsRegistry reg;
  se::RunContext with_metrics;
  with_metrics.metrics = &reg;
  const double on_ms = timed_sweep(with_metrics);
  const double off_ms = timed_sweep(se::RunContext{});
  EXPECT_LT(off_ms, 2.0 * on_ms + 50.0)
      << "disabled-telemetry sweep took " << off_ms << " ms vs " << on_ms
      << " ms with a registry";
  // And nothing was recorded anywhere for the disabled run: the only
  // registry in the process saw exactly one sweep's worth of points.
  EXPECT_EQ(reg.snapshot().counter(so::names::kSweepPointsAttempted), 6u);
}
