#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "cards/card_io.h"
#include "cards/technology_card.h"
#include "compact/device_spec.h"
#include "scaling/technology.h"

namespace fs = std::filesystem;
namespace cards = subscale::cards;
namespace sc = subscale::compact;
namespace ss = subscale::scaling;

namespace {

std::string temp_card_path() {
  static int seq = 0;
  return (fs::temp_directory_path() /
          ("subscale-card-" + std::to_string(::getpid()) + "-" +
           std::to_string(seq++) + ".json"))
      .string();
}

/// Field-by-field bitwise equality (doubles compared with ==).
void expect_cards_equal(const cards::TechnologyCard& a,
                        const cards::TechnologyCard& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.description, b.description);
  EXPECT_EQ(a.env.backend, b.env.backend);
  EXPECT_EQ(a.env.temperature, b.env.temperature);
  EXPECT_EQ(a.env.nw_radius_nm, b.env.nw_radius_nm);
  EXPECT_EQ(a.subvth_ioff_pa_um, b.subvth_ioff_pa_um);
  EXPECT_EQ(a.use_recipe, b.use_recipe);
  const auto an = a.resolved_nodes();
  const auto bn = b.resolved_nodes();
  ASSERT_EQ(an.size(), bn.size());
  for (std::size_t i = 0; i < an.size(); ++i) {
    EXPECT_EQ(an[i].name, bn[i].name);
    EXPECT_EQ(an[i].generation, bn[i].generation);
    EXPECT_EQ(an[i].lpoly_nm, bn[i].lpoly_nm);
    EXPECT_EQ(an[i].tox_nm, bn[i].tox_nm);
    EXPECT_EQ(an[i].vdd, bn[i].vdd);
    EXPECT_EQ(an[i].feature_shrink, bn[i].feature_shrink);
    EXPECT_EQ(an[i].ileak_max_pa_um, bn[i].ileak_max_pa_um);
  }
}

}  // namespace

// ---- builtins ---------------------------------------------------------------

TEST(Cards, PaperCardReproducesPaperNodesBitwise) {
  const cards::TechnologyCard& card = cards::paper_bulk_lstp();
  card.validate();
  const auto nodes = card.resolved_nodes();
  const auto& paper = ss::paper_nodes();
  ASSERT_EQ(nodes.size(), paper.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(nodes[i].name, paper[i].name);
    EXPECT_EQ(nodes[i].lpoly_nm, paper[i].lpoly_nm);
    EXPECT_EQ(nodes[i].tox_nm, paper[i].tox_nm);
    EXPECT_EQ(nodes[i].vdd, paper[i].vdd);
    EXPECT_EQ(nodes[i].feature_shrink, paper[i].feature_shrink);
    EXPECT_EQ(nodes[i].ileak_max_pa_um, paper[i].ileak_max_pa_um);
  }
  EXPECT_EQ(card.env.backend, sc::BackendKind::kBulkMosfet);
  EXPECT_EQ(card.env.temperature, 300.0);
}

TEST(Cards, AllBuiltinsValidateAndAreDistinct) {
  const auto ids = cards::builtin_card_ids();
  EXPECT_GE(ids.size(), 4u);
  for (const std::string& id : ids) {
    const cards::TechnologyCard card = cards::resolve_card(id);
    EXPECT_EQ(card.id, id);
    card.validate();
  }
  EXPECT_EQ(cards::paper_bulk_hot350().env.temperature, 350.0);
  EXPECT_EQ(cards::nanowire_gaa().env.backend, sc::BackendKind::kNanowireGaa);
}

TEST(Cards, ExtendedRecipeContinuesThePaperCadence) {
  const cards::TechnologyCard& card = cards::bulk_lstp_extended();
  const auto nodes = card.resolved_nodes();
  ASSERT_EQ(nodes.size(), 6u);
  EXPECT_EQ(nodes[0].name, "90nm");
  EXPECT_EQ(nodes[4].name, "22nm");
  EXPECT_EQ(nodes[5].name, "16nm");
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i].lpoly_nm, nodes[i - 1].lpoly_nm);
    EXPECT_LT(nodes[i].tox_nm, nodes[i - 1].tox_nm);
    EXPECT_GT(nodes[i].ileak_max_pa_um, nodes[i - 1].ileak_max_pa_um);
  }
}

TEST(Cards, ResolveUnknownIdListsBuiltins) {
  try {
    cards::resolve_card("no_such_deck");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no_such_deck"), std::string::npos);
    for (const std::string& id : cards::builtin_card_ids()) {
      EXPECT_NE(what.find(id), std::string::npos)
          << "error should list builtin '" << id << "': " << what;
    }
  }
}

// ---- JSON round-trip --------------------------------------------------------

TEST(CardIo, JsonRoundTripIsBitwise) {
  for (const std::string& id : cards::builtin_card_ids()) {
    const cards::TechnologyCard card = cards::resolve_card(id);
    const std::string text = cards::card_to_json(card);
    const cards::TechnologyCard back = cards::card_from_json(text);
    expect_cards_equal(card, back);
    // Fixed point: serializing the reloaded card is byte-identical.
    EXPECT_EQ(text, cards::card_to_json(back)) << id;
  }
}

TEST(CardIo, FileRoundTrip) {
  const std::string path = temp_card_path();
  cards::save_card(cards::nanowire_gaa(), path);
  const cards::TechnologyCard back = cards::load_card(path);
  expect_cards_equal(cards::nanowire_gaa(), back);
  // resolve_card falls through builtin ids to readable files.
  expect_cards_equal(cards::nanowire_gaa(), cards::resolve_card(path));
  fs::remove(path);
}

// ---- malformed documents ----------------------------------------------------

TEST(CardIo, TruncatedJsonReportsByteOffset) {
  const std::string text = cards::card_to_json(cards::paper_bulk_lstp());
  const std::string truncated = text.substr(0, text.size() / 2);
  try {
    cards::card_from_json(truncated);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("malformed JSON"), std::string::npos) << what;
    EXPECT_NE(what.find("offset"), std::string::npos)
        << "should carry json_parse's byte offset: " << what;
  }
}

TEST(CardIo, WrongTypedFieldsAreNamed) {
  const auto expect_throw_mentioning = [](const std::string& text,
                                          const std::string& needle) {
    try {
      cards::card_from_json(text);
      FAIL() << "expected std::invalid_argument for " << needle;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  const std::string prefix =
      std::string("{\"schema\": \"") + cards::kCardSchemaTag + "\", ";
  // id as number
  expect_throw_mentioning(prefix + "\"id\": 7}", "card.id");
  // nodes as object instead of array
  expect_throw_mentioning(
      prefix +
          "\"id\": \"x\", \"env\": {\"backend\": \"bulk_mosfet\", "
          "\"temperature\": 300, \"nw_radius_nm\": 4}, "
          "\"subvth_ioff_pa_um\": 100, \"use_recipe\": false, "
          "\"nodes\": {}}",
      "card.nodes");
  // a node's lpoly_nm as string
  expect_throw_mentioning(
      prefix +
          "\"id\": \"x\", \"env\": {\"backend\": \"bulk_mosfet\", "
          "\"temperature\": 300, \"nw_radius_nm\": 4}, "
          "\"subvth_ioff_pa_um\": 100, \"use_recipe\": false, "
          "\"nodes\": [{\"name\": \"90nm\", \"generation\": 0, "
          "\"lpoly_nm\": \"sixty-five\", \"tox_nm\": 2.1, \"vdd\": 1.2, "
          "\"feature_shrink\": 1, \"ileak_max_pa_um\": 100}]}",
      "card.nodes[0].lpoly_nm");
  // unknown backend name
  expect_throw_mentioning(
      prefix +
          "\"id\": \"x\", \"env\": {\"backend\": \"finfet\", "
          "\"temperature\": 300, \"nw_radius_nm\": 4}}",
      "unknown backend");
  // wrong schema tag
  expect_throw_mentioning("{\"schema\": \"subscale.card.v999\"}",
                          "unsupported schema");
}

TEST(CardIo, DuplicateNodeNamesRejected) {
  cards::TechnologyCard card = cards::paper_bulk_lstp();
  card.nodes[2].name = card.nodes[0].name;  // duplicate "90nm"
  const std::string text = cards::card_to_json(card);
  try {
    cards::card_from_json(text);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate node name"),
              std::string::npos)
        << e.what();
  }
}

// ---- validation -------------------------------------------------------------

TEST(Cards, ValidationCatchesNonsense) {
  cards::TechnologyCard card = cards::paper_bulk_lstp();
  card.id.clear();
  EXPECT_THROW(card.validate(), std::invalid_argument);

  card = cards::paper_bulk_lstp();
  card.subvth_ioff_pa_um = 0.0;
  EXPECT_THROW(card.validate(), std::invalid_argument);

  card = cards::paper_bulk_lstp();
  card.nodes.clear();
  EXPECT_THROW(card.validate(), std::invalid_argument);

  card = cards::paper_bulk_lstp();
  card.nodes[1].vdd = -1.0;
  EXPECT_THROW(card.validate(), std::invalid_argument);

  card = cards::paper_bulk_lstp();
  card.env.temperature = 0.0;
  EXPECT_THROW(card.validate(), std::invalid_argument);
}

TEST(Cards, NodeByNameErrorListsKnownNodes) {
  try {
    ss::node_by_name("7nm");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'7nm'"), std::string::npos) << what;
    for (const auto& node : ss::paper_nodes()) {
      EXPECT_NE(what.find(node.name), std::string::npos)
          << "error should list node '" << node.name << "': " << what;
    }
  }
}
