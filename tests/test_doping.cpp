#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "doping/mosfet_doping.h"
#include "doping/profile.h"
#include "physics/units.h"

namespace sd = subscale::doping;
namespace su = subscale::units;

// ---- elementary profiles -----------------------------------------------------

TEST(UniformDoping, SpeciesRouting) {
  const sd::UniformDoping donors(sd::Species::kDonor, 1e24);
  EXPECT_DOUBLE_EQ(donors.donors(0.0, 0.0), 1e24);
  EXPECT_DOUBLE_EQ(donors.acceptors(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(donors.net(1.0, -2.0), 1e24);

  const sd::UniformDoping acceptors(sd::Species::kAcceptor, 2e24);
  EXPECT_DOUBLE_EQ(acceptors.net(0.0, 0.0), -2e24);
}

TEST(GaussianBump2d, PeakAndDecay) {
  const sd::GaussianBump2d bump(sd::Species::kAcceptor, 1e24, 0.0, 0.0,
                                su::nm(10), su::nm(10));
  EXPECT_DOUBLE_EQ(bump.acceptors(0.0, 0.0), 1e24);
  // One sigma away: e^{-1/2}.
  EXPECT_NEAR(bump.acceptors(su::nm(10), 0.0), 1e24 * std::exp(-0.5), 1e12);
  // Isotropy with equal sigmas.
  EXPECT_DOUBLE_EQ(bump.acceptors(su::nm(7), 0.0),
                   bump.acceptors(0.0, su::nm(7)));
  // Far away: exactly zero (cutoff).
  EXPECT_DOUBLE_EQ(bump.acceptors(su::nm(500), 0.0), 0.0);
}

TEST(GaussianBump2d, RejectsInvalid) {
  EXPECT_THROW(sd::GaussianBump2d(sd::Species::kDonor, -1.0, 0, 0, 1e-9, 1e-9),
               std::invalid_argument);
  EXPECT_THROW(sd::GaussianBump2d(sd::Species::kDonor, 1.0, 0, 0, 0.0, 1e-9),
               std::invalid_argument);
}

TEST(DiffusedBox, InteriorFlatExteriorDecays) {
  const sd::DiffusedBox box(sd::Species::kDonor, 1e26, 0.0, su::nm(50),
                            su::nm(30), su::nm(6), su::nm(8));
  // Inside the box: full peak.
  EXPECT_DOUBLE_EQ(box.donors(su::nm(25), su::nm(10)), 1e26);
  EXPECT_DOUBLE_EQ(box.donors(su::nm(0), su::nm(30)), 1e26);
  // One lateral straggle outside: e^{-1/2}.
  EXPECT_NEAR(box.donors(su::nm(56), su::nm(10)), 1e26 * std::exp(-0.5),
              1e16);
  // Below the junction: vertical decay.
  EXPECT_NEAR(box.donors(su::nm(25), su::nm(38)), 1e26 * std::exp(-0.5),
              1e16);
  // Above the surface: nothing.
  EXPECT_DOUBLE_EQ(box.donors(su::nm(25), -su::nm(1)), 0.0);
  // Corner: product of both decays.
  EXPECT_NEAR(box.donors(su::nm(56), su::nm(38)), 1e26 * std::exp(-1.0),
              1e16);
}

TEST(Superposition, SumsParts) {
  auto sum = std::make_shared<sd::Superposition>();
  sum->add(std::make_shared<sd::UniformDoping>(sd::Species::kAcceptor, 1e24));
  sum->add(std::make_shared<sd::GaussianBump2d>(sd::Species::kAcceptor, 2e24,
                                                0.0, 0.0, 1e-8, 1e-8));
  EXPECT_DOUBLE_EQ(sum->acceptors(0.0, 0.0), 3e24);
  EXPECT_DOUBLE_EQ(sum->net(0.0, 0.0), -3e24);
  EXPECT_EQ(sum->component_count(), 2u);
  EXPECT_THROW(sum->add(nullptr), std::invalid_argument);
}

// ---- MosfetGeometry -----------------------------------------------------------

TEST(MosfetGeometry, ScaledBaseline90nm) {
  const auto g = sd::MosfetGeometry::scaled(su::nm(65), su::nm(2.1), 1.0);
  EXPECT_DOUBLE_EQ(su::to_nm(g.lpoly), 65.0);
  EXPECT_DOUBLE_EQ(su::to_nm(g.tox), 2.1);
  EXPECT_NEAR(su::to_nm(g.leff()), 65.0 - 16.0, 1e-9);
  EXPECT_GT(g.xj, 0.0);
  EXPECT_GT(g.device_length(), g.lpoly);
}

TEST(MosfetGeometry, FeatureShrinkScalesEverythingButGate) {
  const auto g1 = sd::MosfetGeometry::scaled(su::nm(65), su::nm(2.1), 1.0);
  const auto g2 = sd::MosfetGeometry::scaled(su::nm(65), su::nm(2.1), 0.7);
  EXPECT_DOUBLE_EQ(g2.lpoly, g1.lpoly);
  EXPECT_DOUBLE_EQ(g2.tox, g1.tox);
  EXPECT_NEAR(g2.xj / g1.xj, 0.7, 1e-12);
  EXPECT_NEAR(g2.halo_sigma_x / g1.halo_sigma_x, 0.7, 1e-12);
  EXPECT_NEAR(g2.lov / g1.lov, 0.7, 1e-12);
}

TEST(MosfetGeometry, RejectsVanishingChannel) {
  // lpoly smaller than twice the overlap must throw.
  EXPECT_THROW(sd::MosfetGeometry::scaled(su::nm(10), su::nm(2.0), 1.0),
               std::invalid_argument);
}

// ---- MOSFET profile --------------------------------------------------------------

namespace {

sd::MosfetGeometry test_geometry() {
  return sd::MosfetGeometry::scaled(su::nm(65), su::nm(2.1), 1.0);
}

sd::MosfetDopingLevels test_levels() {
  return {.nsub = su::per_cm3(1.52e18),
          .np_halo = su::per_cm3(2.11e18),
          .nsd = su::per_cm3(1e20)};
}

}  // namespace

TEST(MosfetProfile, NfetPolarityAtKeyLocations) {
  const auto g = test_geometry();
  const auto profile =
      sd::make_mosfet_profile(sd::Polarity::kNfet, g, test_levels());
  // Channel centre at the surface: net p-type.
  EXPECT_LT(profile->net(0.0, 0.0), 0.0);
  // Deep in the source region: strongly n-type.
  const double x_src = g.source_edge() - g.lov - 0.5 * g.lsd;
  EXPECT_GT(profile->net(x_src, 0.5 * g.xj), su::per_cm3(5e19));
  // Deep substrate: p-type at nsub.
  EXPECT_NEAR(profile->net(0.0, g.substrate_depth),
              -test_levels().nsub, 0.05 * test_levels().nsub);
}

TEST(MosfetProfile, PfetMirrorsSpecies) {
  const auto g = test_geometry();
  const auto profile =
      sd::make_mosfet_profile(sd::Polarity::kPfet, g, test_levels());
  EXPECT_GT(profile->net(0.0, 0.0), 0.0);  // n-type body
  const double x_src = g.source_edge() - g.lov - 0.5 * g.lsd;
  EXPECT_LT(profile->net(x_src, 0.5 * g.xj), -su::per_cm3(5e19));
}

TEST(MosfetProfile, HaloRaisesChannelEdgeDoping) {
  const auto g = test_geometry();
  auto with_halo = test_levels();
  auto no_halo = test_levels();
  no_halo.np_halo = 0.0;
  const auto p1 = sd::make_mosfet_profile(sd::Polarity::kNfet, g, with_halo);
  const auto p0 = sd::make_mosfet_profile(sd::Polarity::kNfet, g, no_halo);
  // At the channel edge near the halo depth, acceptors are elevated.
  const double x_edge = g.source_edge();
  EXPECT_GT(p1->acceptors(x_edge, g.halo_depth),
            p0->acceptors(x_edge, g.halo_depth) + 0.5 * with_halo.np_halo);
}

TEST(MosfetProfile, RejectsBadLevels) {
  const auto g = test_geometry();
  EXPECT_THROW(
      sd::make_mosfet_profile(sd::Polarity::kNfet, g,
                              {.nsub = 0.0, .np_halo = 0.0, .nsd = 1e26}),
      std::invalid_argument);
}

// ---- effective channel doping ------------------------------------------------------

TEST(EffectiveDoping, FractionBetweenZeroAndOne) {
  const auto g = test_geometry();
  const double f = sd::halo_channel_fraction(g);
  EXPECT_GT(f, 0.0);
  EXPECT_LT(f, 1.0);
}

TEST(EffectiveDoping, FractionDecreasesWithChannelLength) {
  // Longer channels dilute the halo contribution (paper Sec. 3.1: "for
  // long-channel devices, the halo doping is less critical").
  double prev = 1.0;
  for (double lpoly_nm : {40.0, 65.0, 95.0, 150.0, 300.0}) {
    const auto g = sd::MosfetGeometry::scaled(su::nm(lpoly_nm), su::nm(2.1),
                                              1.0);
    const double f = sd::halo_channel_fraction(g);
    EXPECT_LT(f, prev) << "lpoly " << lpoly_nm;
    prev = f;
  }
}

TEST(EffectiveDoping, AtLeastSubstrate) {
  const auto g = test_geometry();
  const auto levels = test_levels();
  EXPECT_GE(sd::effective_channel_doping(g, levels), levels.nsub);
  // No halo: exactly substrate.
  auto no_halo = levels;
  no_halo.np_halo = 0.0;
  EXPECT_DOUBLE_EQ(sd::effective_channel_doping(g, no_halo), levels.nsub);
}

// ---- parameterized: halo fraction sweep across shrink factors -----------------------

class HaloShrinkSweep : public ::testing::TestWithParam<double> {};

TEST_P(HaloShrinkSweep, FractionStableAcrossNodesAtProportionalGate) {
  // When lpoly scales with the same factor as the features (super-Vth
  // style), the halo fraction stays roughly constant — this is what makes
  // N_eff grow with the tabulated halo doping rather than with geometry.
  const double s = GetParam();
  const auto g90 = sd::MosfetGeometry::scaled(su::nm(65.0), su::nm(2.1), 1.0);
  const auto g = sd::MosfetGeometry::scaled(su::nm(65.0 * s), su::nm(2.1), s);
  EXPECT_NEAR(sd::halo_channel_fraction(g), sd::halo_channel_fraction(g90),
              0.02);
}

INSTANTIATE_TEST_SUITE_P(Shrinks, HaloShrinkSweep,
                         ::testing::Values(1.0, 0.7, 0.49, 0.343));
