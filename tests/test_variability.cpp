#include <gtest/gtest.h>

#include <cmath>

#include "circuits/variability.h"
#include "compact/device_spec.h"

namespace cc = subscale::circuits;
namespace sc = subscale::compact;
namespace sd = subscale::doping;

namespace {

sc::DeviceSpec nfet_90() {
  return sc::make_spec_from_table(sd::Polarity::kNfet, 65, 2.10, 1.52e18,
                                  3.63e18, 1.2, 1.0);
}

}  // namespace

TEST(Mismatch, PelgromAreaScaling) {
  const cc::MismatchModel model;
  sc::DeviceSpec small = nfet_90();
  sc::DeviceSpec big = nfet_90();
  big.width = 4.0 * small.width;
  // 4x the area -> half the sigma.
  EXPECT_NEAR(model.sigma_vth(small) / model.sigma_vth(big), 2.0, 1e-12);
  // Typical magnitude: a 1um x 65nm 90nm-class device sits near 13-14 mV.
  EXPECT_GT(model.sigma_vth(small), 5e-3);
  EXPECT_LT(model.sigma_vth(small), 25e-3);
}

TEST(Variability, DeterministicForFixedSeed) {
  const auto inv = cc::make_inverter(nfet_90()).at_vdd(0.25);
  const auto a = cc::delay_variability(inv, {}, {.samples = 50});
  const auto b = cc::delay_variability(inv, {}, {.samples = 50});
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.sigma, b.sigma);
}

TEST(Variability, GrowsTowardSubthreshold) {
  const auto inv = cc::make_inverter(nfet_90());
  const auto nominal = cc::delay_variability(inv.at_vdd(1.2), {}, {.samples = 200});
  const auto sub = cc::delay_variability(inv.at_vdd(0.25), {}, {.samples = 200});
  EXPECT_GT(sub.sigma_over_mean, 2.0 * nominal.sigma_over_mean);
}

TEST(Variability, LognormalPredictionHoldsDeepSubthreshold) {
  const auto inv = cc::make_inverter(nfet_90()).at_vdd(0.22);
  const auto r = cc::delay_variability(inv, {}, {.samples = 1200});
  EXPECT_NEAR(r.sigma_ln / r.sigma_ln_predicted, 1.0, 0.15);
}

TEST(Variability, ZeroMismatchIsQuiet) {
  const auto inv = cc::make_inverter(nfet_90()).at_vdd(0.25);
  cc::MismatchModel none;
  none.a_vt = 0.0;
  const auto r = cc::delay_variability(inv, none, {.samples = 20});
  EXPECT_NEAR(r.sigma_over_mean, 0.0, 1e-12);
  EXPECT_GT(r.mean, 0.0);
}

TEST(Variability, TransientAndAnalyticAgreeOnSpread) {
  // The simulated-transient Monte-Carlo is slow, so compare small
  // samples: the relative spreads must be in the same ballpark.
  const auto inv = cc::make_inverter(nfet_90()).at_vdd(0.25);
  const auto fast = cc::delay_variability(inv, {}, {.samples = 60});
  const auto slow = cc::delay_variability(
      inv, {}, {.samples = 60, .simulate_transient = true});
  EXPECT_NEAR(slow.sigma_over_mean / fast.sigma_over_mean, 1.0, 0.35);
}

TEST(Variability, RejectsDegenerateInputs) {
  const auto inv = cc::make_inverter(nfet_90()).at_vdd(0.25);
  EXPECT_THROW(cc::delay_variability(inv, {}, {.samples = 1}),
               std::invalid_argument);
}

// Parameterized: variability falls with device area at fixed V_dd.
class AreaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AreaSweep, WiderDevicesAreQuieter) {
  const double width_um = GetParam();
  sc::DeviceSpec wide = nfet_90();
  wide.width = width_um * 1e-6;
  const auto inv_ref = cc::make_inverter(nfet_90()).at_vdd(0.25);
  const auto inv_wide = cc::make_inverter(wide).at_vdd(0.25);
  const auto r_ref = cc::delay_variability(inv_ref, {}, {.samples = 300});
  const auto r_wide = cc::delay_variability(inv_wide, {}, {.samples = 300});
  EXPECT_LT(r_wide.sigma_over_mean, r_ref.sigma_over_mean);
}

INSTANTIATE_TEST_SUITE_P(Areas, AreaSweep, ::testing::Values(2.0, 4.0, 8.0));
