#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/csv.h"
#include "io/series.h"
#include "io/table.h"

namespace si = subscale::io;

// ---- TextTable ------------------------------------------------------------------

TEST(TextTable, RendersAlignedColumns) {
  si::TextTable t({"node", "value"});
  t.add_row({"90nm", "1.3"});
  t.add_row({"32nm", "0.62"});
  const std::string out = t.render();
  // Header, underline, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("node"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("32nm"), std::string::npos);
}

TEST(TextTable, RowArityEnforced) {
  si::TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(si::TextTable({}), std::invalid_argument);
}

TEST(TextTable, IndentApplied) {
  si::TextTable t({"x"});
  t.add_row({"1"});
  const std::string out = t.render(4);
  EXPECT_EQ(out.substr(0, 4), "    ");
}

TEST(Format, Helpers) {
  EXPECT_EQ(si::fmt(1.2345, 3), "1.23");
  EXPECT_EQ(si::fmt_pct(0.23, 1), "23.0%");
  EXPECT_NE(si::fmt_sci(1.52e18).find("e+18"), std::string::npos);
}

// ---- Series -------------------------------------------------------------------------

TEST(Series, NormalizeToFirst) {
  si::Series s("delay");
  s.add(90, 2.0);
  s.add(65, 1.0);
  s.add(45, 0.5);
  const auto n = s.normalized_to_first();
  EXPECT_DOUBLE_EQ(n[0].y, 1.0);
  EXPECT_DOUBLE_EQ(n[2].y, 0.25);
}

TEST(Series, ConsecutiveRatios) {
  si::Series s("e");
  s.add(0, 4.0);
  s.add(1, 2.0);
  s.add(2, 1.0);
  const auto r = s.consecutive_ratios();
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0], 0.5);
  EXPECT_DOUBLE_EQ(r[1], 0.5);
}

TEST(Series, TotalRelativeChange) {
  si::Series s("snm");
  s.add(90, 100.0);
  s.add(32, 89.0);
  EXPECT_NEAR(s.total_relative_change(), -0.11, 1e-12);
  si::Series single("x");
  single.add(0, 1.0);
  EXPECT_THROW(single.total_relative_change(), std::logic_error);
}

TEST(Series, MinMax) {
  si::Series s("v");
  s.add(0, 3.0);
  s.add(1, -2.0);
  s.add(2, 7.0);
  EXPECT_DOUBLE_EQ(s.y_min(), -2.0);
  EXPECT_DOUBLE_EQ(s.y_max(), 7.0);
  EXPECT_THROW(si::Series("empty").y_min(), std::logic_error);
}

// ---- CSV ------------------------------------------------------------------------------

TEST(Csv, RendersSharedAxis) {
  si::Series a("a"), b("b");
  a.add(1, 10);
  a.add(2, 20);
  b.add(1, -1);
  b.add(2, -2);
  const std::string csv = si::to_csv({a, b});
  EXPECT_EQ(csv, "x,a,b\n1,10,-1\n2,20,-2\n");
}

TEST(Csv, RejectsMismatchedAxes) {
  si::Series a("a"), b("b");
  a.add(1, 10);
  b.add(2, -1);
  EXPECT_THROW(si::to_csv({a, b}), std::invalid_argument);
  si::Series c("c");
  EXPECT_THROW(si::to_csv({a, c}), std::invalid_argument);
  EXPECT_THROW(si::to_csv({}), std::invalid_argument);
}

TEST(Csv, WritesFile) {
  si::Series a("a");
  a.add(1, 2);
  const std::string path = ::testing::TempDir() + "/subscale_csv_test.csv";
  si::write_csv_file(path, {a});
  std::ifstream file(path);
  std::stringstream buf;
  buf << file.rdbuf();
  EXPECT_EQ(buf.str(), "x,a\n1,2\n");
  std::remove(path.c_str());
}
