#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "io/csv.h"
#include "io/json_parse.h"
#include "io/series.h"
#include "io/table.h"
#include "io/trace_export.h"
#include "io/writer.h"
#include "obs/convergence.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace si = subscale::io;
namespace so = subscale::obs;

// ---- TextTable ------------------------------------------------------------------

TEST(TextTable, RendersAlignedColumns) {
  si::TextTable t({"node", "value"});
  t.add_row({"90nm", "1.3"});
  t.add_row({"32nm", "0.62"});
  const std::string out = t.render();
  // Header, underline, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("node"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("32nm"), std::string::npos);
}

TEST(TextTable, RowArityEnforced) {
  si::TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(si::TextTable({}), std::invalid_argument);
}

TEST(TextTable, IndentApplied) {
  si::TextTable t({"x"});
  t.add_row({"1"});
  const std::string out = t.render(4);
  EXPECT_EQ(out.substr(0, 4), "    ");
}

TEST(Format, Helpers) {
  EXPECT_EQ(si::fmt(1.2345, 3), "1.23");
  EXPECT_EQ(si::fmt_pct(0.23, 1), "23.0%");
  EXPECT_NE(si::fmt_sci(1.52e18).find("e+18"), std::string::npos);
}

// ---- Series -------------------------------------------------------------------------

TEST(Series, NormalizeToFirst) {
  si::Series s("delay");
  s.add(90, 2.0);
  s.add(65, 1.0);
  s.add(45, 0.5);
  const auto n = s.normalized_to_first();
  EXPECT_DOUBLE_EQ(n[0].y, 1.0);
  EXPECT_DOUBLE_EQ(n[2].y, 0.25);
}

TEST(Series, ConsecutiveRatios) {
  si::Series s("e");
  s.add(0, 4.0);
  s.add(1, 2.0);
  s.add(2, 1.0);
  const auto r = s.consecutive_ratios();
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0], 0.5);
  EXPECT_DOUBLE_EQ(r[1], 0.5);
}

TEST(Series, TotalRelativeChange) {
  si::Series s("snm");
  s.add(90, 100.0);
  s.add(32, 89.0);
  EXPECT_NEAR(s.total_relative_change(), -0.11, 1e-12);
  si::Series single("x");
  single.add(0, 1.0);
  EXPECT_THROW(single.total_relative_change(), std::logic_error);
}

TEST(Series, MinMax) {
  si::Series s("v");
  s.add(0, 3.0);
  s.add(1, -2.0);
  s.add(2, 7.0);
  EXPECT_DOUBLE_EQ(s.y_min(), -2.0);
  EXPECT_DOUBLE_EQ(s.y_max(), 7.0);
  EXPECT_THROW(si::Series("empty").y_min(), std::logic_error);
}

// ---- CSV ------------------------------------------------------------------------------

TEST(Csv, RendersSharedAxis) {
  si::Series a("a"), b("b");
  a.add(1, 10);
  a.add(2, 20);
  b.add(1, -1);
  b.add(2, -2);
  const std::string csv = si::to_csv({a, b});
  EXPECT_EQ(csv, "x,a,b\n1,10,-1\n2,20,-2\n");
}

TEST(Csv, RejectsMismatchedAxes) {
  si::Series a("a"), b("b");
  a.add(1, 10);
  b.add(2, -1);
  EXPECT_THROW(si::to_csv({a, b}), std::invalid_argument);
  si::Series c("c");
  EXPECT_THROW(si::to_csv({a, c}), std::invalid_argument);
  EXPECT_THROW(si::to_csv({}), std::invalid_argument);
}

TEST(Csv, WritesFile) {
  si::Series a("a");
  a.add(1, 2);
  const std::string path = ::testing::TempDir() + "/subscale_csv_test.csv";
  si::write_csv_file(path, {a});
  std::ifstream file(path);
  std::stringstream buf;
  buf << file.rdbuf();
  EXPECT_EQ(buf.str(), "x,a\n1,2\n");
  std::remove(path.c_str());
}

// ---- Writer ---------------------------------------------------------------------------

TEST(JsonWriter, RendersNestedDocument) {
  si::JsonWriter w;
  w.begin_object();
  w.key("a");
  w.value(1.5);
  w.key("list");
  w.begin_array();
  w.value(std::uint64_t{2});
  w.value(true);
  w.end_array();
  w.key("s");
  w.value("x\"y");
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\n  \"a\": 1.5,\n  \"list\": [\n    2,\n    true\n  ],\n"
            "  \"s\": \"x\\\"y\"\n}\n");
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  si::JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(w.str(), "[\n  null,\n  null\n]\n");
}

TEST(JsonWriter, RejectsMalformedDocuments) {
  si::JsonWriter open;
  open.begin_object();
  EXPECT_THROW(open.str(), std::logic_error);
  EXPECT_THROW(open.end_array(), std::logic_error);

  si::JsonWriter keyless;
  keyless.begin_array();
  EXPECT_THROW(keyless.key("k"), std::logic_error);
}

TEST(CsvWriter, SharesTheSeriesPathWithJson) {
  si::Series a("a"), b("b");
  a.add(1, 10);
  a.add(2, 20);
  b.add(1, -1);
  b.add(2, -2);

  si::CsvWriter csv;
  si::write_series_document(csv, {a, b});
  EXPECT_EQ(csv.str(), "x,a,b\n1,10,-1\n2,20,-2\n");

  si::JsonWriter json;
  si::write_series_document(json, {a, b});
  EXPECT_NE(json.str().find("\"a\": [\n"), std::string::npos);
}

TEST(CsvWriter, RejectsNonColumnShapes) {
  si::CsvWriter nested;
  nested.begin_object();
  nested.key("inner");
  EXPECT_THROW(nested.begin_object(), std::invalid_argument);

  si::CsvWriter ragged;
  ragged.begin_object();
  ragged.key("a");
  ragged.begin_array();
  ragged.value(1.0);
  ragged.end_array();
  ragged.key("b");
  ragged.begin_array();
  ragged.end_array();
  ragged.end_object();
  EXPECT_THROW(ragged.str(), std::invalid_argument);
}

TEST(MetricsJson, FlatSnapshotSchema) {
  so::MetricsRegistry reg;
  reg.counter("tcad.gummel.solves").add(3);
  reg.gauge("tcad.gummel.last_residual").set(1e-8);
  reg.histogram("tcad.sweep.point_ms", so::buckets::kLatencyMs).record(2.0);

  si::JsonWriter w;
  si::write_metrics_snapshot(w, reg.snapshot());
  const std::string out = w.str();
  EXPECT_NE(out.find("\"tcad.gummel.solves\": 3"), std::string::npos);
  EXPECT_NE(out.find("\"tcad.gummel.last_residual\": "), std::string::npos);
  EXPECT_NE(out.find("\"tcad.sweep.point_ms.count\": 1"), std::string::npos);
  EXPECT_NE(out.find("\"tcad.sweep.point_ms.sum\": 2"), std::string::npos);
}

TEST(TableJson, HeadersAndRows) {
  si::TextTable t({"node", "value"});
  t.add_row({"90nm", "1.3"});
  si::JsonWriter w;
  si::write_table_document(w, t);
  const std::string out = w.str();
  EXPECT_NE(out.find("\"headers\""), std::string::npos);
  EXPECT_NE(out.find("\"90nm\""), std::string::npos);
}

// ---- escaping and non-finite edge cases -----------------------------------

TEST(JsonWriter, EscapesQuotesBackslashesAndControlChars) {
  si::JsonWriter w;
  w.begin_object();
  w.key("q\"b\\c");
  w.value(std::string_view("line1\nline2\ttab\rcr \x01 bell\x07"));
  w.end_object();
  const std::string out = w.str();
  EXPECT_NE(out.find("\"q\\\"b\\\\c\""), std::string::npos);
  EXPECT_NE(out.find("line1\\nline2\\ttab\\rcr"), std::string::npos);
  EXPECT_NE(out.find("\\u0001"), std::string::npos);
  EXPECT_NE(out.find("\\u0007"), std::string::npos);
  // No raw control bytes survive in the document.
  for (const char c : out) {
    EXPECT_TRUE(c == '\n' || static_cast<unsigned char>(c) >= 0x20)
        << "raw control char in output";
  }
}

TEST(CsvWriter, NonFiniteCellsBecomeNull) {
  si::CsvWriter w;
  w.begin_object();
  w.key("v");
  w.begin_array();
  w.value(1.5);
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "v\n1.5\nnull\nnull\nnull\n");
}

// ---- chrome trace export --------------------------------------------------

namespace {

/// A small two-thread-shaped snapshot built by hand.
subscale::obs::ProfileSnapshot sample_snapshot() {
  subscale::obs::ProfileSnapshot snap;
  snap.spans.push_back({"outer", 0, 0, 1, 0, 1000, 9000});
  snap.spans.push_back({"inner", 0, 1, 2, 1, 2000, 5000});
  snap.spans.push_back({"outer", 1, 0, 1, 0, 1500, 4500});
  return snap;
}

}  // namespace

TEST(TraceExport, EmitsCompleteEventsPerThreadTrack) {
  si::JsonWriter w;
  si::write_chrome_trace(w, sample_snapshot());
  const std::string out = w.str();
  EXPECT_NE(out.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(out.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(out.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"inner\""), std::string::npos);
  // Microsecond timestamps: 2000 ns -> 2 us; durations likewise.
  EXPECT_NE(out.find("\"ts\": 2"), std::string::npos);
  EXPECT_NE(out.find("\"dur\": 3"), std::string::npos);
  // One track per recording thread.
  EXPECT_NE(out.find("\"tid\": 0"), std::string::npos);
  EXPECT_NE(out.find("\"tid\": 1"), std::string::npos);
  EXPECT_NE(out.find("\"droppedSpans\": 0"), std::string::npos);
  // Parent links travel in args for offline reconstruction.
  EXPECT_NE(out.find("\"parent\": 1"), std::string::npos);
}

TEST(TraceExport, RoundTripsThroughRealProfiler) {
  subscale::obs::SpanProfiler prof;
  {
    subscale::obs::ScopedSpan outer(&prof, "a");
    subscale::obs::ScopedSpan inner(&prof, "b");
  }
  si::JsonWriter w;
  si::write_chrome_trace(w, prof.snapshot());
  const std::string out = w.str();
  EXPECT_NE(out.find("\"name\": \"a\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"b\""), std::string::npos);
  EXPECT_NE(out.find("\"depth\": 1"), std::string::npos);
}

TEST(TraceExport, ConvergenceDocumentRendersNaNAsNull) {
  std::vector<subscale::obs::SolveTrajectory> solves(1);
  solves[0].vg = 0.25;
  solves[0].vd = 0.5;
  solves[0].converged = false;
  solves[0].samples.push_back({1, 0.125, 7, 1e23, 0.25});
  solves[0].samples.push_back(
      {2, 5e-4, 6, std::numeric_limits<double>::quiet_NaN(),
       std::numeric_limits<double>::quiet_NaN()});

  si::JsonWriter w;
  si::write_convergence_document(w, solves);
  const std::string out = w.str();
  EXPECT_NE(out.find("\"solves\": ["), std::string::npos);
  EXPECT_NE(out.find("\"vg\": 0.25"), std::string::npos);
  EXPECT_NE(out.find("\"converged\": false"), std::string::npos);
  EXPECT_NE(out.find("\"psi_update\": [\n        0.25,\n        null"),
            std::string::npos);
  EXPECT_NE(out.find("\"poisson_iterations\": [\n        7,\n        6"),
            std::string::npos);
}

// ---- JsonParse ------------------------------------------------------------------
//
// The reader side of the library's own JSON dialect (manifests, merged
// study outputs, BENCH records). The contract under test: full JSON
// acceptance, total accessors (wrong type / missing key -> fallback,
// never a throw), and hard rejection of malformed documents with an
// offset-bearing error instead of an exception.

TEST(JsonParse, ParsesScalarsAndContainers) {
  std::string error;
  si::JsonPtr v = si::json_parse(
      R"({"b": true, "n": -1.5e3, "s": "hi", "z": null,)"
      R"( "a": [1, 2, 3], "o": {"k": 4}})",
      &error);
  ASSERT_NE(v, nullptr) << error;
  EXPECT_EQ(v->kind(), si::JsonValue::Kind::kObject);
  EXPECT_TRUE(v->bool_at("b", false));
  EXPECT_DOUBLE_EQ(v->number_at("n", 0.0), -1500.0);
  EXPECT_EQ(v->string_at("s"), "hi");
  EXPECT_TRUE(v->get("z")->is_null());
  ASSERT_EQ(v->get("a")->size(), 3u);
  EXPECT_DOUBLE_EQ(v->get("a")->at(1)->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(v->get("o")->number_at("k", 0.0), 4.0);
}

TEST(JsonParse, AccessorsAreTotalOnMismatch) {
  si::JsonPtr v = si::json_parse(R"({"s": "text", "n": 7})");
  ASSERT_NE(v, nullptr);
  // Wrong-type and missing-key reads fall back instead of throwing.
  EXPECT_DOUBLE_EQ(v->number_at("s", -1.0), -1.0);
  EXPECT_EQ(v->string_at("n", "fb"), "fb");
  EXPECT_EQ(v->get("absent"), nullptr);
  EXPECT_FALSE(v->has("absent"));
  EXPECT_EQ(v->at(0), nullptr);         // object, not array
  EXPECT_EQ(v->get("n")->at(99), nullptr);  // number, not array
}

TEST(JsonParse, WriterOutputRoundTripsBitExactDoubles) {
  // The writers emit %.17g; the parser holds doubles, so every value a
  // JsonWriter produces must read back bit-identical.
  const double samples[] = {0.0, 1.0 / 3.0, 6.5e-9, 1.7976931348623157e308,
                            -2.2250738585072014e-308, 42.0};
  si::JsonWriter w;
  w.begin_array();
  for (double d : samples) w.value(d);
  w.end_array();
  si::JsonPtr v = si::json_parse(w.str());
  ASSERT_NE(v, nullptr);
  ASSERT_EQ(v->size(), std::size(samples));
  for (std::size_t i = 0; i < std::size(samples); ++i) {
    EXPECT_EQ(v->at(i)->as_number(), samples[i]) << "sample " << i;
  }
}

TEST(JsonParse, DecodesEscapesIncludingUnicode) {
  si::JsonPtr v = si::json_parse(
      R"(["a\"b", "tab\there", "nl\n", "back\\slash", "\u00e9\u0024"])");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->at(0)->as_string(), "a\"b");
  EXPECT_EQ(v->at(1)->as_string(), "tab\there");
  EXPECT_EQ(v->at(2)->as_string(), "nl\n");
  EXPECT_EQ(v->at(3)->as_string(), "back\\slash");
  EXPECT_EQ(v->at(4)->as_string(), "\xc3\xa9$");  // UTF-8 for e-acute
}

TEST(JsonParse, RejectsMalformedWithOffsetError) {
  const char* bad[] = {
      "",                 // empty document
      "{",                // truncated object
      "[1, 2",            // truncated array
      "{\"k\": }",        // missing value
      "{\"k\" 1}",        // missing colon
      "[1,, 2]",          // empty element
      "\"unterminated",   // unterminated string
      "\"bad \\q escape\"",
      "\"trunc \\u12\"",  // truncated \u escape
      "tru",              // truncated keyword
      "{\"k\": 1} extra", // trailing garbage
      "nan",              // non-finite literals are not JSON
  };
  for (const char* doc : bad) {
    std::string error;
    EXPECT_EQ(si::json_parse(doc, &error), nullptr) << doc;
    EXPECT_FALSE(error.empty()) << doc;
  }
}

TEST(JsonParse, EnforcesNestingDepthLimit) {
  // 64 nested arrays parse; deep bombs are rejected, not stack-crashed.
  const std::string ok(64, '['), ok_close(64, ']');
  EXPECT_NE(si::json_parse(ok + "1" + ok_close), nullptr);
  std::string error;
  const std::string bomb(5000, '[');
  EXPECT_EQ(si::json_parse(bomb + std::string(5000, ']'), &error), nullptr);
  EXPECT_NE(error.find("deep"), std::string::npos);
}

TEST(JsonParse, FileHelperReportsUnreadableAndRoundTrips) {
  std::string error;
  EXPECT_EQ(si::json_parse_file("/nonexistent/subscale.json", &error),
            nullptr);
  EXPECT_FALSE(error.empty());

  const std::string path = "test_io_json_parse_tmp.json";
  {
    std::ofstream out(path);
    out << R"({"answer": 42})";
  }
  si::JsonPtr v = si::json_parse_file(path, &error);
  ASSERT_NE(v, nullptr) << error;
  EXPECT_DOUBLE_EQ(v->number_at("answer", 0.0), 42.0);
  std::remove(path.c_str());
}
