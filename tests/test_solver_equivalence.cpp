/// The differential-equivalence tier for the cold-solve accelerators:
/// every solver strategy (decoupled Gummel, coupled Newton, hybrid) and
/// the mesh-continuation cascade must land on the same converged state
/// as the seed Gummel solver on fixture-class devices — the
/// accelerators may only change how fast an answer arrives, never which
/// answer. Determinism rides along: the hybrid strategy must produce
/// bitwise-identical sweeps at 1, 2 and 4 threads.
///
/// What "the same answer" means here is deliberately two-tiered:
///
///  * STATE FIELDS (psi and the majority carrier n) agree at 1e-9 —
///    the full solution, and a well-conditioned comparison. Every
///    strategy certifies its converged point on the same Gummel fixed
///    point (Newton results are polished by a Gummel pass, a mesh-
///    continuation guess is only an initial guess for the fine solver),
///    so with the stops in tight() the measured strategy-to-strategy
///    spread is <=1e-11 psi / <=2e-10 n: the 1e-9 bound carries about
///    two orders of margin. The minority-carrier hole field gets its
///    own 2e-8 bound: the outer stop watches psi, and at the stiff
///    (vdd, vdd) corner the hole relaxation contracts slowly against a
///    ~1e-10 per-outer-iteration noise floor, so the hole distance to
///    the fixed point plateaus near 5e-9 even with the stops tightened
///    another 100x (measured; tightening further stalls the ramp
///    instead of helping).
///  * TERMINAL CURRENTS agree at 1e-5. The contact-flux evaluation sums
///    Scharfetter-Gummel edge fluxes in the n+ contact region, where
///    each edge is a small difference of near-equal large terms; the
///    gross/net flux ratio there reaches ~1e9 at subthreshold bias, so
///    relative state noise at the ~1e-15 linear-solve floor appears as
///    ~1e-6 current noise no matter how tightly the solves converge
///    (measured: cross-strategy current deltas of 2.4e-6 on the
///    sub-Vth fixture while the same states agree at 1e-14). The 1e-5
///    bound pins the currents at that functional's actual conditioning
///    limit; the field comparison above is the authoritative 1e-9
///    equivalence evidence.
///
/// Fixtures: the Table 2 rows the TCAD tier robustly holds (the 90nm
/// and 65nm paper nodes — the 45/32nm rows are the "aggressive
/// 32nm-class literal structures" whose equilibrium the seed solver
/// already cannot hold, see ScalingStudy::tcad_validation) plus the
/// Table 3 95nm sub-Vth node at its 0.3V operating supply. fig02/fig09
/// derive from the same device rows; the nanowire backend is pinned by
/// the must-throw guard at the bottom.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "compact/device_spec.h"
#include "exec/run_context.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "tcad/device_sim.h"

namespace se = subscale::exec;
namespace so = subscale::obs;
namespace st = subscale::tcad;
namespace sc = subscale::compact;
namespace sd = subscale::doping;

namespace {

sc::DeviceSpec table2_90() {
  return sc::make_spec_from_table(sd::Polarity::kNfet, 65, 2.10, 1.52e18,
                                  3.63e18, 1.2, 1.0);
}
sc::DeviceSpec table2_65() {
  return sc::make_spec_from_table(sd::Polarity::kNfet, 46, 1.89, 1.97e18,
                                  5.17e18, 1.1, 0.700);
}
sc::DeviceSpec table3_95() {
  return sc::make_spec_from_table(sd::Polarity::kNfet, 95, 2.10, 1.61e18,
                                  2.02e18, 0.3, 1.0);
}

/// Field agreement bound for psi and the majority carrier.
constexpr double kFieldRelTol = 1e-9;
/// Absolute psi bound [V]; the potential crosses zero inside the device
/// so a pure relative comparison would blow up at the sign change.
constexpr double kPsiTolV = 1e-9;
/// Minority-carrier (hole) bound: the psi-watching outer stop leaves
/// the slow hole relaxation ~5e-9 from its fixed point at the stiff
/// high-bias corner no matter how tight the stops go (see file
/// comment).
constexpr double kMinorityRelTol = 2e-8;
/// Terminal-current bound: the conditioning limit of the contact-flux
/// functional (see the file comment), not of the solvers.
constexpr double kCurrentRelTol = 1e-5;
/// Density nodes more than 8 decades below the device maximum carry no
/// measurable current and sit at (or within linear-solve noise of) the
/// solver's positivity floor; comparing them relatively would compare
/// noise against noise.
constexpr double kDensityFloorFrac = 1e-8;

/// Solver stops tightened well below the comparison bounds, so the
/// residual strategy-to-strategy spread is convergence slack, not
/// disagreement. 1e-12 outer / 1e-14 inner is the tightest envelope
/// every fixture sustains across all strategies; it needs the extra
/// outer-iteration headroom because the (vdd, vdd) corner contracts
/// slowly (distance to the fixed point is ~10x the last psi update
/// there, which is exactly why a 1e-10 stop is NOT enough to compare
/// fields at 1e-9).
st::GummelOptions tight(st::SolverStrategy strategy,
                        std::size_t meshcont_levels = 0) {
  st::GummelOptions o;
  o.max_iterations = 400;
  o.psi_tolerance = 1e-12;
  o.poisson.update_tolerance = 1e-14;
  o.strategy = strategy;
  o.mesh_continuation_levels = meshcont_levels;
  return o;
}

/// Currents and converged states of one device under one solver config
/// at the fixture bias points: the hard high-bias corner (vdd, vdd) —
/// the point the cold-solve budget targets — and a subthreshold point.
struct Snapshot {
  std::array<double, 2> id{};
  std::array<std::vector<double>, 2> psi, n, p;
};

Snapshot snapshot_under(const sc::DeviceSpec& spec,
                        const st::GummelOptions& options) {
  st::TcadDevice dev(spec, {}, options);
  const std::array<std::array<double, 2>, 2> points = {
      {{spec.vdd, spec.vdd}, {spec.vdd / 3.0, 0.05}}};
  Snapshot s;
  for (std::size_t k = 0; k < points.size(); ++k) {
    s.id[k] = dev.id_at(points[k][0], points[k][1]);
    s.psi[k] = dev.solver().psi();
    s.n[k] = dev.solver().electron_density();
    s.p[k] = dev.solver().hole_density();
  }
  return s;
}

void expect_field_equivalent(const std::vector<double>& base,
                             const std::vector<double>& other, double floor,
                             double tol, const std::string& label) {
  ASSERT_EQ(base.size(), other.size()) << label;
  double worst = 0.0;
  std::size_t worst_idx = 0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (base[i] < floor && other[i] < floor) continue;
    const double rel =
        std::abs(other[i] - base[i]) / std::max(base[i], floor);
    if (rel > worst) {
      worst = rel;
      worst_idx = i;
    }
  }
  EXPECT_LE(worst, tol)
      << label << " node " << worst_idx << ": " << base[worst_idx] << " vs "
      << other[worst_idx];
}

void expect_state_equivalent(const Snapshot& base, const Snapshot& other,
                             const std::string& label) {
  for (std::size_t k = 0; k < 2; ++k) {
    const std::string at = label + " point " + std::to_string(k);
    ASSERT_EQ(base.psi[k].size(), other.psi[k].size()) << at;
    double dpsi = 0.0;
    for (std::size_t i = 0; i < base.psi[k].size(); ++i) {
      dpsi = std::max(dpsi, std::abs(other.psi[k][i] - base.psi[k][i]));
    }
    EXPECT_LE(dpsi, kPsiTolV) << at << ": max |dpsi| " << dpsi << " V";

    double nmax = 0.0, pmax = 0.0;
    for (const double v : base.n[k]) nmax = std::max(nmax, v);
    for (const double v : base.p[k]) pmax = std::max(pmax, v);
    expect_field_equivalent(base.n[k], other.n[k], kDensityFloorFrac * nmax,
                            kFieldRelTol, at + " n");
    expect_field_equivalent(base.p[k], other.p[k], kDensityFloorFrac * pmax,
                            kMinorityRelTol, at + " p");
  }
}

void expect_current_equivalent(const Snapshot& base, const Snapshot& other,
                               const std::string& label) {
  for (std::size_t k = 0; k < 2; ++k) {
    const double scale = std::max(std::abs(base.id[k]), 1e-300);
    EXPECT_LE(std::abs(other.id[k] - base.id[k]) / scale, kCurrentRelTol)
        << label << " point " << k << ": gummel " << base.id[k] << " vs "
        << other.id[k];
  }
}

void run_equivalence(const sc::DeviceSpec& spec, const std::string& name) {
  const Snapshot gummel =
      snapshot_under(spec, tight(st::SolverStrategy::kGummel));
  for (const double id : gummel.id) {
    ASSERT_TRUE(std::isfinite(id)) << name;
  }
  const auto check = [&](st::SolverStrategy strategy, std::size_t levels,
                         const std::string& label) {
    const Snapshot other = snapshot_under(spec, tight(strategy, levels));
    expect_state_equivalent(gummel, other, name + "/" + label);
    expect_current_equivalent(gummel, other, name + "/" + label);
  };
  check(st::SolverStrategy::kNewton, 0, "newton");
  check(st::SolverStrategy::kHybrid, 0, "hybrid");
  check(st::SolverStrategy::kGummel, 2, "meshcont2");
  check(st::SolverStrategy::kHybrid, 2, "hybrid+meshcont2");
}

}  // namespace

// ---- strategy equivalence on the fixture devices ---------------------------

TEST(SolverEquivalence, Table2Node90) { run_equivalence(table2_90(), "90nm"); }

TEST(SolverEquivalence, Table2Node65) { run_equivalence(table2_65(), "65nm"); }

TEST(SolverEquivalence, Table3Node95SubVth) {
  run_equivalence(table3_95(), "95nm-subvth");
}

// ---- Slotboom assembly differential ----------------------------------------

// The Slotboom-variable continuity assembly is a second, independently
// derived discretization of the same physics (symmetric in the scaled
// unknowns, exact at equilibrium). On the sub-Vth fixture — the regime
// the variables are scaled for — its converged state must match the
// raw-density assembly at the field bound, which cross-checks both
// assemblies at once. Currents are excluded: the slotboom path draws a
// different linear-solve noise realization, and at high bias its
// exponential weights degrade the system's conditioning, which the
// ill-conditioned contact-flux functional amplifies past kCurrentRelTol
// (that, plus super-Vth ramp stalls, is why the knob defaults off and
// why it is exercised here on the sub-Vth device only).
TEST(SolverEquivalence, SlotboomAssemblyMatchesRawDensityOnFields) {
  const sc::DeviceSpec spec = table3_95();
  const Snapshot raw = snapshot_under(spec, tight(st::SolverStrategy::kGummel));
  st::GummelOptions o = tight(st::SolverStrategy::kGummel);
  o.continuity.slotboom = true;
  const Snapshot slotboom = snapshot_under(spec, o);
  expect_state_equivalent(raw, slotboom, "95nm-subvth/slotboom");
}

// ---- the density stop --------------------------------------------------------

// The optional density stop pins the lagged-SRH carrier relaxation that
// the psi stop alone is blind to. It must converge at a tolerance above
// the linear-solve noise floor (~1e-8 relative per outer iteration) and
// leave the landed state on the same fixed point.
TEST(SolverEquivalence, DensityStopConvergesAndAgrees) {
  const sc::DeviceSpec spec = table3_95();
  const Snapshot base = snapshot_under(spec, tight(st::SolverStrategy::kGummel));
  st::GummelOptions o = tight(st::SolverStrategy::kGummel);
  o.density_tolerance = 1e-6;
  const Snapshot stopped = snapshot_under(spec, o);
  expect_state_equivalent(base, stopped, "95nm-subvth/density-stop");
  expect_current_equivalent(base, stopped, "95nm-subvth/density-stop");
}

// ---- the accelerated paths actually run ------------------------------------

TEST(SolverEquivalence, NewtonStrategyActuallyRunsNewton) {
  so::MetricsRegistry reg;
  se::RunContext ctx;
  ctx.metrics = &reg;
  st::TcadDevice dev(table2_90(), {}, tight(st::SolverStrategy::kNewton),
                     ctx);
  dev.id_at(0.45, 0.25);
  EXPECT_GT(reg.counter(so::names::kNewtonSolves).value(), 0u);
  EXPECT_GT(reg.counter(so::names::kNewtonIterations).value(), 0u);
  // The easy fixture must not need the Gummel fallback.
  EXPECT_EQ(reg.counter(so::names::kNewtonFallbacks).value(), 0u);
}

TEST(SolverEquivalence, MeshContinuationActuallyRuns) {
  so::MetricsRegistry reg;
  se::RunContext ctx;
  ctx.metrics = &reg;
  st::TcadDevice dev(table2_90(), {},
                     tight(st::SolverStrategy::kGummel, 2), ctx);
  ASSERT_NE(dev.mesh_continuation(), nullptr);
  EXPECT_EQ(dev.mesh_continuation()->level_count(), 2u);
  // Coarser levels really are coarser, in order.
  const auto counts = dev.mesh_continuation()->level_node_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_LT(counts[0], counts[1]);
  EXPECT_LT(counts[1], dev.structure().mesh().node_count());
  dev.id_at(1.2, 1.2);
  EXPECT_GT(reg.counter(so::names::kMeshContLevels).value(), 0u);
  EXPECT_GT(reg.counter(so::names::kMeshContProlongations).value(), 0u);
}

// ---- determinism across thread counts --------------------------------------

TEST(SolverEquivalence, HybridSweepBitwiseDeterministicAcrossThreads) {
  const auto sweep_at = [&](std::size_t threads) {
    se::RunContext ctx;
    ctx.exec.threads = threads;
    st::TcadDevice dev(table2_90(), {},
                       tight(st::SolverStrategy::kHybrid, 2), ctx);
    return dev.id_vg(0.25, 0.0, 0.45, 6);
  };
  const st::SweepResult base = sweep_at(1);
  ASSERT_TRUE(base.all_converged());
  ASSERT_EQ(base.size(), 6u);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    const st::SweepResult other = sweep_at(threads);
    ASSERT_EQ(other.size(), base.size()) << threads << " threads";
    for (std::size_t i = 0; i < base.size(); ++i) {
      // Bitwise: the solve is serial per device, so the thread policy
      // must not leak into the arithmetic at all.
      EXPECT_EQ(base[i].id, other[i].id) << threads << " threads, point " << i;
      EXPECT_EQ(base[i].vg, other[i].vg);
    }
  }
}

// ---- backend guard ----------------------------------------------------------

TEST(SolverEquivalence, NanowireSpecThrowsUnderEveryStrategy) {
  sc::DeviceSpec spec = table2_90();
  sc::DeviceEnv env;
  env.backend = sc::BackendKind::kNanowireGaa;
  spec.apply_env(env);
  for (const st::SolverStrategy strategy :
       {st::SolverStrategy::kGummel, st::SolverStrategy::kNewton,
        st::SolverStrategy::kHybrid}) {
    EXPECT_THROW(st::TcadDevice(spec, {}, tight(strategy)),
                 std::invalid_argument);
    EXPECT_THROW(st::TcadDevice(spec, {}, tight(strategy, 2)),
                 std::invalid_argument);
  }
}
