#include <gtest/gtest.h>

#include "circuits/vtc.h"
#include "circuits/vmin.h"
#include "core/scaling_study.h"

namespace cc = subscale::circuits;
namespace sco = subscale::core;

// The ScalingStudy facade is the entry point the benches use; these are
// integration tests across the whole stack (strategies -> devices ->
// circuits).

namespace {

const sco::ScalingStudy& study() {
  static const sco::ScalingStudy s;
  return s;
}

}  // namespace

TEST(ScalingStudy, CachesRoadmaps) {
  const auto& a = study().super_devices();
  const auto& b = study().super_devices();
  EXPECT_EQ(&a, &b);  // same object: computed once
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(study().sub_devices().size(), 4u);
}

TEST(ScalingStudy, InverterAccessorsValidateIndex) {
  EXPECT_THROW(study().super_inverter(7, 0.25), std::out_of_range);
  EXPECT_THROW(study().sub_inverter(7, 0.25), std::out_of_range);
  const auto inv = study().super_inverter(0, 0.25);
  EXPECT_DOUBLE_EQ(inv.vdd, 0.25);
}

TEST(ScalingStudy, PaperHeadlineSnmComparison) {
  // Fig. 10: at the 32nm node the sub-V_th strategy's inverter SNM beats
  // the super-V_th strategy's by a double-digit percentage (paper: 19 %).
  const double vdd = study().options().vdd_subthreshold;
  const double snm_super =
      cc::noise_margins(study().super_inverter(3, vdd)).snm;
  const double snm_sub = cc::noise_margins(study().sub_inverter(3, vdd)).snm;
  const double gain = snm_sub / snm_super - 1.0;
  EXPECT_GT(gain, 0.10);
  EXPECT_LT(gain, 0.40);
}

TEST(ScalingStudy, PaperHeadlineEnergyComparison) {
  // Fig. 12: at the 32nm node the sub-V_th device consumes noticeably
  // less energy at V_min (paper: ~23 % less).
  const auto r_super = cc::find_vmin(study().super_inverter(3, 0.3));
  const auto r_sub = cc::find_vmin(study().sub_inverter(3, 0.3));
  const double saving = 1.0 - r_sub.at_vmin.e_total / r_super.at_vmin.e_total;
  EXPECT_GT(saving, 0.08);
  EXPECT_LT(saving, 0.45);
}

TEST(ScalingStudy, SubVthDelayScalesGracefully) {
  // Fig. 11: under the sub-V_th strategy, delay at 250 mV falls steadily
  // (paper: ~18 %/generation). The super-V_th curve is non-monotonic.
  const double vdd = study().options().vdd_subthreshold;
  double prev = 0.0;
  for (std::size_t i = 0; i < study().node_count(); ++i) {
    const double tp = cc::fo1_delay(study().sub_inverter(i, vdd)).tp;
    if (i > 0) {
      const double ratio = tp / prev;
      EXPECT_LT(ratio, 1.0) << "node " << i;
      EXPECT_GT(ratio, 0.55) << "node " << i;
    }
    prev = tp;
  }
}

TEST(ScalingStudy, TcadValidationDegradesGracefully) {
  // Study-level resilience: a permanently faulted bias window loses one
  // sweep point, which is recorded in the node's report while the rest
  // of the sweep (and the study) carries on. No throw in non-strict mode.
  namespace st = subscale::tcad;
  sco::TcadValidationOptions opt;
  opt.nodes = {0};  // the 90nm node only (TCAD solves are expensive)
  opt.points = 10;
  opt.mesh.surface_spacing = 0.6e-9;
  opt.mesh.junction_spacing = 1.5e-9;
  opt.gummel.fault.stage = st::SolveStage::kPoisson;
  opt.gummel.fault.count = 1'000'000'000;
  opt.gummel.fault.min_bias = 0.19;
  opt.gummel.fault.max_bias = 0.21;

  const auto results = study().tcad_validation(opt);
  ASSERT_EQ(results.size(), 1u);
  const auto& node = results[0];
  EXPECT_TRUE(node.error.empty());
  EXPECT_TRUE(node.usable());
  EXPECT_EQ(node.report.attempted, 10u);
  ASSERT_EQ(node.report.failures.size(), 1u);
  EXPECT_NEAR(node.report.failures.front().vg, 0.20, 1e-12);
  EXPECT_EQ(node.sweep.size(), 9u);

  // A device that cannot even reach equilibrium is reported as a node
  // error instead of aborting the validation run.
  opt.gummel.fault.min_bias = 0.0;
  const auto broken = study().tcad_validation(opt);
  ASSERT_EQ(broken.size(), 1u);
  EXPECT_FALSE(broken[0].error.empty());
  EXPECT_FALSE(broken[0].usable());
  EXPECT_NE(broken[0].error.find("Poisson"), std::string::npos)
      << broken[0].error;

  // Strict mode propagates the failure instead.
  opt.run.strict = true;
  EXPECT_THROW(study().tcad_validation(opt), st::SolverError);
}
