// Fast orchestrator-layer tests: manifest construction and round-trip,
// unit key schema properties, lease protocol primitives, poison
// markers, the UnitResult byte codec, and chaos-phase determinism.
// Everything here runs in milliseconds (no TCAD solves); the end-to-end
// fork/chaos/resume coverage lives in test_orch_study.cpp.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "cache/lease.h"
#include "cache/solve_cache.h"
#include "orch/manifest.h"
#include "orch/orchestrator.h"
#include "orch/unit_runner.h"
#include "orch/worker.h"

namespace fs = std::filesystem;
namespace sca = subscale::cache;
namespace so = subscale::orch;
using subscale::core::Strategy;

namespace {

struct TempDir {
  fs::path path;
  TempDir() {
    static int seq = 0;
    path = fs::temp_directory_path() /
           ("subscale-test-orch-" + std::to_string(::getpid()) + "-" +
            std::to_string(seq++));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

so::StudySpec small_spec() {
  so::StudySpec spec;
  spec.nodes = {0, 1};
  spec.vds = {0.25, 0.05};
  spec.points = 4;
  spec.mesh.surface_spacing = 0.6e-9;
  spec.mesh.junction_spacing = 1.5e-9;
  return spec;
}

so::UnitResult sample_result() {
  so::UnitResult r;
  r.node = 2;
  r.lpoly_nm = 45.5;
  r.attempted = 4;
  r.points = {{0.0, 1e-9}, {0.15, 2.5e-8}, {0.3, 7.5e-7}};
  so::UnitFailure f;
  f.vg = 0.45;
  f.vd = 0.25;
  f.stage = "poisson";
  f.status = "stalled";
  r.failures = {f};
  return r;
}

}  // namespace

// ---- manifest ---------------------------------------------------------------

TEST(Manifest, GridExpansionOrderAndIndices) {
  so::StudySpec spec = small_spec();
  spec.strategies = {Strategy::kSuperVth, Strategy::kSubVth};
  const so::Manifest m = so::build_manifest(spec);
  // strategies x nodes x vds, nested in that order.
  ASSERT_EQ(m.units.size(), 2u * 2u * 2u);
  EXPECT_EQ(m.units[0].strategy, Strategy::kSuperVth);
  EXPECT_EQ(m.units[0].node, 0u);
  EXPECT_EQ(m.units[0].vd, 0.25);
  EXPECT_EQ(m.units[1].vd, 0.05);
  EXPECT_EQ(m.units[2].node, 1u);
  EXPECT_EQ(m.units[4].strategy, Strategy::kSubVth);
  for (std::size_t i = 0; i < m.units.size(); ++i) {
    EXPECT_EQ(m.units[i].index, i);
  }
}

TEST(Manifest, UnitKeysAreDistinctAndDeterministic) {
  const so::Manifest a = so::build_manifest(small_spec());
  const so::Manifest b = so::build_manifest(small_spec());
  ASSERT_EQ(a.units.size(), b.units.size());
  for (std::size_t i = 0; i < a.units.size(); ++i) {
    EXPECT_EQ(a.units[i].result_key, b.units[i].result_key);
    for (std::size_t j = i + 1; j < a.units.size(); ++j) {
      EXPECT_NE(a.units[i].result_key, a.units[j].result_key);
    }
  }
}

TEST(Manifest, KeyMovesWhenAnyInputChanges) {
  const so::Manifest base = so::build_manifest(small_spec());
  so::StudySpec finer = small_spec();
  finer.points = 6;
  const so::Manifest more_points = so::build_manifest(finer);
  so::StudySpec other_mesh = small_spec();
  other_mesh.mesh.grading_ratio = 1.5;
  const so::Manifest remeshed = so::build_manifest(other_mesh);
  EXPECT_NE(base.units[0].result_key, more_points.units[0].result_key);
  EXPECT_NE(base.units[0].result_key, remeshed.units[0].result_key);
}

TEST(Manifest, CardIsCarriedHashedAndResolved) {
  // A non-default technology card must flow spec -> study options ->
  // unit keys -> manifest JSON: same grid, disjoint key space.
  const so::Manifest base = so::build_manifest(small_spec());
  so::StudySpec hot = small_spec();
  hot.card = "paper_bulk_hot350";
  const so::Manifest hot_m = so::build_manifest(hot);
  ASSERT_EQ(base.units.size(), hot_m.units.size());
  for (std::size_t i = 0; i < base.units.size(); ++i) {
    EXPECT_NE(base.units[i].result_key, hot_m.units[i].result_key);
  }

  // The resolved card reaches the study options, temperature included.
  const auto options = so::study_options_for(hot);
  EXPECT_EQ(options.card.id, "paper_bulk_hot350");
  EXPECT_EQ(options.card.env.temperature, 350.0);

  // And survives the manifest JSON round-trip byte-exactly.
  TempDir dir;
  const std::string path = dir.str() + "/m.json";
  ASSERT_TRUE(so::save_manifest(path, hot_m));
  so::Manifest back;
  std::string error;
  ASSERT_TRUE(so::load_manifest(path, back, &error)) << error;
  EXPECT_EQ(back.spec.card, "paper_bulk_hot350");
  EXPECT_EQ(so::manifest_to_json(back), so::manifest_to_json(hot_m));

  // Unknown cards are rejected before any unit is enqueued.
  so::StudySpec bogus = small_spec();
  bogus.card = "no_such_deck";
  EXPECT_THROW(so::build_manifest(bogus), std::invalid_argument);
}

TEST(Manifest, JsonRoundTripIsExact) {
  TempDir dir;
  so::StudySpec spec = small_spec();
  spec.strategies = {Strategy::kSubVth};
  spec.gummel.max_iterations = 42;
  spec.gummel.psi_tolerance = 3.25e-8;
  const so::Manifest m = so::build_manifest(spec);
  const std::string path = dir.str() + "/manifest.json";
  ASSERT_TRUE(so::save_manifest(path, m));

  so::Manifest back;
  std::string error;
  ASSERT_TRUE(so::load_manifest(path, back, &error)) << error;
  EXPECT_EQ(back.version, m.version);
  EXPECT_EQ(back.spec.points, m.spec.points);
  EXPECT_EQ(back.spec.gummel.max_iterations, 42u);
  EXPECT_EQ(back.spec.gummel.psi_tolerance, 3.25e-8);
  ASSERT_EQ(back.units.size(), m.units.size());
  for (std::size_t i = 0; i < m.units.size(); ++i) {
    EXPECT_EQ(back.units[i].result_key, m.units[i].result_key);
    EXPECT_EQ(back.units[i].strategy, m.units[i].strategy);
    EXPECT_EQ(back.units[i].node, m.units[i].node);
    EXPECT_EQ(back.units[i].vd, m.units[i].vd);
  }
  // The reloaded manifest re-serializes to the identical document.
  EXPECT_EQ(so::manifest_to_json(back), so::manifest_to_json(m));
}

TEST(Manifest, LoadRejectsMalformedAndVersionBumped) {
  TempDir dir;
  const std::string path = dir.str() + "/m.json";
  so::Manifest out;
  std::string error;
  EXPECT_FALSE(so::load_manifest(path, out, &error));  // absent

  const std::string garbled = "{\"manifest_version\": 1, \"units\": ";
  sca::atomic_write_file(path, garbled.data(), garbled.size());
  EXPECT_FALSE(so::load_manifest(path, out, &error));

  const std::string bumped =
      "{\"manifest_version\": 999, \"spec\": {}, \"units\": []}";
  sca::atomic_write_file(path, bumped.data(), bumped.size());
  EXPECT_FALSE(so::load_manifest(path, out, &error));
  EXPECT_NE(error.find("manifest_version"), std::string::npos);
}

TEST(Manifest, ValidationNamesOffendingField) {
  so::StudySpec spec = small_spec();
  spec.points = 1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = small_spec();
  spec.vds.clear();
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = small_spec();
  spec.nodes = {99};
  EXPECT_THROW(so::build_manifest(spec), std::out_of_range);
}

TEST(Manifest, StrategyNamesRoundTrip) {
  Strategy s;
  ASSERT_TRUE(so::parse_strategy("supervth", s));
  EXPECT_EQ(s, Strategy::kSuperVth);
  ASSERT_TRUE(so::parse_strategy("subvth", s));
  EXPECT_EQ(s, Strategy::kSubVth);
  EXPECT_FALSE(so::parse_strategy("underdrive", s));
  EXPECT_STREQ(so::strategy_name(Strategy::kSuperVth), "supervth");
  EXPECT_STREQ(so::strategy_name(Strategy::kSubVth), "subvth");
}

// ---- leases -----------------------------------------------------------------

TEST(Lease, ExactlyOneAcquirerWins) {
  TempDir dir;
  const std::string path = dir.str() + "/leases/unit-0.lease";
  EXPECT_TRUE(sca::lease_try_acquire(path, "alice"));
  EXPECT_FALSE(sca::lease_try_acquire(path, "bob"));
  const sca::LeaseInfo info = sca::lease_inspect(path);
  EXPECT_TRUE(info.exists);
  EXPECT_EQ(info.owner, "alice");
  sca::lease_release(path);
  EXPECT_FALSE(sca::lease_inspect(path).exists);
  // Released leases are reacquirable, and release is idempotent.
  sca::lease_release(path);
  EXPECT_TRUE(sca::lease_try_acquire(path, "bob"));
}

TEST(Lease, ManyThreadsRaceOneWinner) {
  TempDir dir;
  const std::string path = dir.str() + "/race.lease";
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      if (sca::lease_try_acquire(path, "t" + std::to_string(t))) {
        winners.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(winners.load(), 1);
}

TEST(Lease, HeartbeatRefreshesAgeAndBeats) {
  TempDir dir;
  const std::string path = dir.str() + "/hb.lease";
  ASSERT_TRUE(sca::lease_try_acquire(path, "w0"));
  ASSERT_TRUE(sca::lease_heartbeat(path, "w0", 7));
  const sca::LeaseInfo info = sca::lease_inspect(path);
  EXPECT_TRUE(info.exists);
  EXPECT_EQ(info.owner, "w0");
  EXPECT_EQ(info.beats, 7u);
  EXPECT_LT(info.age_seconds, 30.0);  // just written
  // An aged lease reads as stale through the same inspect path.
  fs::last_write_time(path,
                      fs::file_time_type::clock::now() -
                          std::chrono::seconds(90));
  EXPECT_GT(sca::lease_inspect(path).age_seconds, 60.0);
}

TEST(Lease, StudyDirPoisonMarkers) {
  TempDir dir;
  EXPECT_FALSE(so::unit_poisoned(dir.str(), 3));
  ASSERT_TRUE(so::poison_unit(dir.str(), 3, "retry budget exhausted"));
  EXPECT_TRUE(so::unit_poisoned(dir.str(), 3));
  EXPECT_FALSE(so::unit_poisoned(dir.str(), 4));
  EXPECT_EQ(so::poison_reason(dir.str(), 3), "retry budget exhausted");
  EXPECT_EQ(so::poison_reason(dir.str(), 4), "");
  // Idempotent: re-poisoning just rewrites the reason.
  ASSERT_TRUE(so::poison_unit(dir.str(), 3, "deadline"));
  EXPECT_EQ(so::poison_reason(dir.str(), 3), "deadline");
}

// ---- unit result codec ------------------------------------------------------

TEST(UnitCodec, RoundTripsExactly) {
  const so::UnitResult r = sample_result();
  const std::vector<std::uint8_t> bytes = so::encode_unit_result(r);
  so::UnitResult back;
  ASSERT_TRUE(so::decode_unit_result(bytes, back));
  EXPECT_EQ(back.node, r.node);
  EXPECT_EQ(back.lpoly_nm, r.lpoly_nm);
  EXPECT_EQ(back.error, r.error);
  EXPECT_EQ(back.attempted, r.attempted);
  ASSERT_EQ(back.points.size(), r.points.size());
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    EXPECT_EQ(back.points[i].vg, r.points[i].vg);
    EXPECT_EQ(back.points[i].id, r.points[i].id);
  }
  ASSERT_EQ(back.failures.size(), 1u);
  EXPECT_EQ(back.failures[0].stage, "poisson");
  EXPECT_EQ(back.failures[0].status, "stalled");
}

TEST(UnitCodec, RejectsTruncationAndVersionBump) {
  const std::vector<std::uint8_t> bytes =
      so::encode_unit_result(sample_result());
  so::UnitResult out;
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, bytes.size() / 2,
                          bytes.size() - 1}) {
    const std::vector<std::uint8_t> truncated(bytes.begin(),
                                              bytes.begin() + cut);
    EXPECT_FALSE(so::decode_unit_result(truncated, out)) << cut;
  }
  std::vector<std::uint8_t> bumped = bytes;
  bumped[0] = 0xEE;  // version field is the first u32
  EXPECT_FALSE(so::decode_unit_result(bumped, out));
  std::vector<std::uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(so::decode_unit_result(trailing, out));
}

TEST(UnitCodec, PublishAndLoadThroughCache) {
  TempDir dir;
  sca::CacheOptions options;
  options.dir = dir.str() + "/cache";
  sca::SolveCache cache(options);
  const so::Manifest m = so::build_manifest(small_spec());
  const so::UnitResult r = sample_result();
  ASSERT_TRUE(so::publish_unit_result(cache, m.units[0], r));
  so::UnitResult back;
  ASSERT_TRUE(so::load_unit_result(cache, m.units[0], back));
  EXPECT_EQ(back.points.size(), r.points.size());
  // The neighbouring unit's key misses.
  EXPECT_FALSE(so::load_unit_result(cache, m.units[1], back));
}

// ---- chaos + merge determinism ----------------------------------------------

TEST(Chaos, KillPhaseIsSeededAndCoversAllSites) {
  so::ChaosPolicy chaos;
  chaos.kill_after_units = 1;
  bool seen[3] = {false, false, false};
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    chaos.seed = seed;
    const std::size_t phase = so::chaos_kill_phase(chaos, 0);
    ASSERT_LT(phase, 3u);
    seen[phase] = true;
    // Deterministic: same seed/unit, same site.
    EXPECT_EQ(phase, so::chaos_kill_phase(chaos, 0));
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

TEST(Merge, StudyResultJsonIsCanonical) {
  const so::Manifest m = so::build_manifest(small_spec());
  const so::UnitResult r = sample_result();
  std::vector<const so::UnitResult*> results(m.units.size(), &r);
  results[1] = nullptr;  // a poisoned slot
  const std::string a = so::study_result_json(m, results);
  const std::string b = so::study_result_json(m, results);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"poisoned\": true"), std::string::npos);
  // Results change the document; the poisoned hole is visible.
  results[1] = &r;
  EXPECT_NE(so::study_result_json(m, results), a);
}

TEST(OrchOptionsValidation, NamesOffendingFields) {
  so::OrchOptions options;
  EXPECT_THROW(options.validate(), std::invalid_argument);  // no cache_dir
  options.cache_dir = "/tmp/x";
  options.workers = 2;
  EXPECT_THROW(options.validate(), std::invalid_argument);  // no study_dir
  options.study_dir = "/tmp/y";
  options.lease_timeout_seconds = options.heartbeat_seconds;  // too tight
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.lease_timeout_seconds = 2.0;
  EXPECT_NO_THROW(options.validate());
}
