#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cache/bytes.h"
#include "cache/hash.h"
#include "cache/lease.h"
#include "cache/solve_cache.h"
#include "cache/study_keys.h"
#include "cache/tcad_keys.h"
#include "compact/device_spec.h"
#include "exec/run_context.h"
#include "opt/memo.h"
#include "scaling/technology.h"
#include "tcad/device_sim.h"

namespace fs = std::filesystem;
namespace sca = subscale::cache;
namespace sc = subscale::compact;
namespace sd = subscale::doping;
namespace se = subscale::exec;
namespace st = subscale::tcad;

namespace {

/// Unique on-disk cache root, removed on scope exit.
struct TempCacheDir {
  fs::path path;
  TempCacheDir() {
    static int seq = 0;
    path = fs::temp_directory_path() /
           ("subscale-test-cache-" + std::to_string(::getpid()) + "-" +
            std::to_string(seq++));
    fs::remove_all(path);
  }
  ~TempCacheDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

sca::CacheOptions disk_options(const TempCacheDir& dir) {
  sca::CacheOptions opt;
  opt.dir = dir.str();
  return opt;
}

std::vector<std::uint8_t> some_bytes(std::size_t n, std::uint8_t seed = 7) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed + i * 31);
  }
  return out;
}

sca::HashKey key_of(std::uint64_t salt) {
  sca::KeyHasher h;
  h.tag("test.key").u64(salt);
  return h.key();
}

/// The paper's 90nm super-V_th NFET (Table 2) on a coarse mesh — the
/// cheapest real TCAD problem the suite has.
sc::DeviceSpec nfet_90() {
  return sc::make_spec_from_table(sd::Polarity::kNfet, 65, 2.10, 1.52e18,
                                  3.63e18, 1.2, 1.0);
}

st::MeshOptions coarse_mesh() {
  st::MeshOptions mesh;
  mesh.surface_spacing = 0.6e-9;
  mesh.junction_spacing = 1.5e-9;
  return mesh;
}

}  // namespace

// ---- float canonicalization ------------------------------------------------

TEST(CacheHash, NegativeZeroCanonicalizesToPositiveZero) {
  EXPECT_EQ(sca::canonical_f64_bits(-0.0), sca::canonical_f64_bits(0.0));
  sca::KeyHasher a;
  a.tag("x").f64(-0.0);
  sca::KeyHasher b;
  b.tag("x").f64(0.0);
  EXPECT_EQ(a.key(), b.key());
}

TEST(CacheHash, AllNansCanonicalizeToOnePattern) {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  const double snan = std::numeric_limits<double>::signaling_NaN();
  EXPECT_EQ(sca::canonical_f64_bits(qnan), sca::canonical_f64_bits(snan));
  EXPECT_EQ(sca::canonical_f64_bits(-qnan), sca::canonical_f64_bits(qnan));
  // ... but NaN is still distinct from every number.
  EXPECT_NE(sca::canonical_f64_bits(qnan), sca::canonical_f64_bits(0.0));
}

TEST(CacheHash, DistinctValuesDistinctBits) {
  EXPECT_NE(sca::canonical_f64_bits(1.0), sca::canonical_f64_bits(2.0));
  EXPECT_NE(sca::canonical_f64_bits(1.0),
            sca::canonical_f64_bits(std::nextafter(1.0, 2.0)));
  // Signed nonzero values keep their sign.
  EXPECT_NE(sca::canonical_f64_bits(-1.0), sca::canonical_f64_bits(1.0));
}

// ---- key properties ---------------------------------------------------------

TEST(CacheHash, KeysAreDeterministic) {
  EXPECT_EQ(key_of(42), key_of(42));
  EXPECT_NE(key_of(42), key_of(43));
}

TEST(CacheHash, TagsPreventFieldAliasing) {
  sca::KeyHasher a;
  a.tag("first").f64(1.0).tag("second").f64(2.0);
  sca::KeyHasher b;
  b.tag("first").f64(2.0).tag("second").f64(1.0);
  EXPECT_NE(a.key(), b.key());
}

TEST(CacheHash, SeededChainingDiffersFromFresh) {
  const sca::HashKey seed = key_of(1);
  sca::KeyHasher chained(seed);
  chained.tag("x").f64(3.0);
  sca::KeyHasher fresh;
  fresh.tag("x").f64(3.0);
  EXPECT_NE(chained.key(), fresh.key());
}

TEST(CacheTcadKeys, EquivalentInputsHashEqual) {
  const sc::DeviceSpec spec = nfet_90();
  const st::MeshOptions mesh = coarse_mesh();
  const st::GummelOptions gummel;
  EXPECT_EQ(sca::device_solve_key(spec, mesh, gummel),
            sca::device_solve_key(spec, mesh, gummel));

  // Fault injection is NOT part of the key (call sites bypass the cache
  // while it is armed).
  st::GummelOptions faulted = gummel;
  faulted.fault.stage = st::SolveStage::kPoisson;
  faulted.fault.count = 3;
  EXPECT_EQ(sca::device_solve_key(spec, mesh, gummel),
            sca::device_solve_key(spec, mesh, faulted));
}

TEST(CacheTcadKeys, EverySpecFieldPerturbsTheKey) {
  const sc::DeviceSpec base = nfet_90();
  const st::MeshOptions mesh = coarse_mesh();
  const st::GummelOptions gummel;
  const sca::HashKey base_key = sca::device_solve_key(base, mesh, gummel);

  const auto differs = [&](const sc::DeviceSpec& s) {
    return sca::device_solve_key(s, mesh, gummel) != base_key;
  };
  sc::DeviceSpec s = base;
  s.polarity = sd::Polarity::kPfet;
  EXPECT_TRUE(differs(s));
  s = base;
  s.vdd += 0.01;
  EXPECT_TRUE(differs(s));
  s = base;
  s.temperature += 1.0;
  EXPECT_TRUE(differs(s));
  s = base;
  s.width *= 2.0;
  EXPECT_TRUE(differs(s));
  // Geometry fields.
  s = base;
  s.geometry.lpoly *= 1.01;
  EXPECT_TRUE(differs(s));
  s = base;
  s.geometry.tox *= 1.01;
  EXPECT_TRUE(differs(s));
  s = base;
  s.geometry.xj *= 1.01;
  EXPECT_TRUE(differs(s));
  s = base;
  s.geometry.feature_shrink *= 1.01;
  EXPECT_TRUE(differs(s));
  // Doping levels.
  s = base;
  s.levels.nsub *= 1.01;
  EXPECT_TRUE(differs(s));
  s = base;
  s.levels.np_halo += 1e20;
  EXPECT_TRUE(differs(s));
  s = base;
  s.levels.nsd *= 1.01;
  EXPECT_TRUE(differs(s));
  // Backend discrimination: a cached bulk solve must never serve a
  // nanowire query, and the wire radius is physics-bearing.
  s = base;
  s.backend = sc::BackendKind::kNanowireGaa;
  EXPECT_TRUE(differs(s));
  s = base;
  s.nw_radius *= 1.5;
  EXPECT_TRUE(differs(s));
}

TEST(CacheTcadKeys, MeshAndSolverOptionsPerturbTheKey) {
  const sc::DeviceSpec spec = nfet_90();
  const st::MeshOptions mesh = coarse_mesh();
  const st::GummelOptions gummel;
  const sca::HashKey base_key = sca::device_solve_key(spec, mesh, gummel);

  st::MeshOptions m = mesh;
  m.surface_spacing *= 1.5;
  EXPECT_NE(sca::device_solve_key(spec, m, gummel), base_key);
  m = mesh;
  m.oxide_layers += 1;
  EXPECT_NE(sca::device_solve_key(spec, m, gummel), base_key);

  st::GummelOptions g;
  g.psi_tolerance *= 0.5;
  EXPECT_NE(sca::device_solve_key(spec, mesh, g), base_key);
  g = st::GummelOptions{};
  g.max_iterations += 1;
  EXPECT_NE(sca::device_solve_key(spec, mesh, g), base_key);
  g = st::GummelOptions{};
  g.continuity.velocity_saturation = !g.continuity.velocity_saturation;
  EXPECT_NE(sca::device_solve_key(spec, mesh, g), base_key);
}

TEST(CacheTcadKeys, DerivedKeysAreDistinct) {
  const sca::HashKey dev =
      sca::device_solve_key(nfet_90(), coarse_mesh(), {});
  const sca::HashKey sweep = sca::sweep_key(dev, 0.25, 0.0, 0.45, 10);
  const sca::HashKey state = sca::state_key(dev, 0.0, 0.0, 0.0, 0.0);
  const sca::HashKey index = sca::bias_index_key(dev);
  EXPECT_NE(sweep, dev);
  EXPECT_NE(state, dev);
  EXPECT_NE(index, dev);
  EXPECT_NE(sweep, state);
  EXPECT_NE(state, index);
  // The bias grid is part of a sweep's identity.
  EXPECT_NE(sca::sweep_key(dev, 0.25, 0.0, 0.45, 11), sweep);
  EXPECT_NE(sca::sweep_key(dev, 0.30, 0.0, 0.45, 10), sweep);
}

TEST(CacheStudyKeys, CalibrationAndNodePerturbTheKey) {
  const auto& node = subscale::scaling::paper_nodes()[0];
  const subscale::scaling::SubVthOptions options;
  const sc::Calibration calib = sc::paper_calibration();
  const sca::HashKey base =
      sca::subvth_design_key(node, options, calib);
  EXPECT_EQ(sca::subvth_design_key(node, options, calib), base);

  sc::Calibration c = calib;
  c.c_wire *= 1.01;
  EXPECT_NE(sca::subvth_design_key(node, options, c), base);

  subscale::scaling::SubVthOptions o = options;
  o.ioff_pa_um *= 2.0;
  EXPECT_NE(sca::subvth_design_key(node, o, calib), base);

  // The exec policy is NOT hashed: thread count cannot change results.
  o = options;
  o.exec = se::ExecPolicy{7};
  EXPECT_EQ(sca::subvth_design_key(node, o, calib), base);
}

TEST(CacheStudyKeys, DeviceEnvDiscriminatesCardsBackendsTemperatures) {
  // Two cards that differ only in environment must never share a
  // design-objective memo: each env axis perturbs the 128-bit key.
  const auto& node = subscale::scaling::paper_nodes()[0];
  const sc::Calibration calib = sc::paper_calibration();
  const subscale::scaling::SubVthOptions bulk300;
  const sca::HashKey base = sca::subvth_design_key(node, bulk300, calib);

  subscale::scaling::SubVthOptions o = bulk300;
  o.env.backend = sc::BackendKind::kNanowireGaa;
  const sca::HashKey nanowire = sca::subvth_design_key(node, o, calib);
  EXPECT_NE(nanowire, base);

  o = bulk300;
  o.env.temperature = 350.0;
  const sca::HashKey hot = sca::subvth_design_key(node, o, calib);
  EXPECT_NE(hot, base);
  EXPECT_NE(hot, nanowire);

  o = bulk300;
  o.env.nw_radius_nm = 6.0;
  EXPECT_NE(sca::subvth_design_key(node, o, calib), base);

  // And the same env hashes identically (keys are pure functions).
  o = bulk300;
  o.env.temperature = 350.0;
  EXPECT_EQ(sca::subvth_design_key(node, o, calib), hot);
}

// ---- byte codec robustness --------------------------------------------------

TEST(CacheBytes, RoundTrip) {
  sca::ByteWriter w;
  w.u32(0xdeadbeefu);
  w.u64(1ull << 60);
  w.f64(-0.0);
  w.str("gate");
  w.f64_vector({1.0, 2.5, -3.75});
  const std::vector<std::uint8_t> bytes = w.take();

  sca::ByteReader r(bytes);
  std::uint32_t a = 0;
  std::uint64_t b = 0;
  double c = 1.0;
  std::string s;
  std::vector<double> v;
  ASSERT_TRUE(r.u32(a));
  ASSERT_TRUE(r.u64(b));
  ASSERT_TRUE(r.f64(c));
  ASSERT_TRUE(r.str(s));
  ASSERT_TRUE(r.f64_vector(v));
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(a, 0xdeadbeefu);
  EXPECT_EQ(b, 1ull << 60);
  EXPECT_TRUE(std::signbit(c));  // payloads are raw bits, not canonical
  EXPECT_EQ(s, "gate");
  EXPECT_EQ(v, (std::vector<double>{1.0, 2.5, -3.75}));
}

TEST(CacheBytes, TruncationFailsCleanly) {
  sca::ByteWriter w;
  w.f64_vector(std::vector<double>(16, 1.0));
  std::vector<std::uint8_t> bytes = w.take();
  for (const std::size_t keep : {std::size_t{0}, std::size_t{4},
                                 std::size_t{8}, bytes.size() - 1}) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + keep);
    sca::ByteReader r(cut);
    std::vector<double> v;
    EXPECT_FALSE(r.f64_vector(v)) << "kept " << keep << " bytes";
  }
}

TEST(CacheBytes, HugeLengthPrefixRejectedBeforeAllocation) {
  sca::ByteWriter w;
  w.u64(~0ull);  // claims 2^64-1 elements
  const std::vector<std::uint8_t> bytes = w.bytes();
  sca::ByteReader r(bytes);
  std::vector<double> v;
  EXPECT_FALSE(r.f64_vector(v));
  sca::ByteReader r2(bytes);
  std::string s;
  EXPECT_FALSE(r2.str(s));
}

// ---- in-memory cache --------------------------------------------------------

TEST(SolveCache, MemoryRoundTrip) {
  sca::SolveCache cache{sca::CacheOptions{}};
  EXPECT_FALSE(cache.persistent());
  const sca::HashKey key = key_of(1);
  EXPECT_EQ(cache.lookup(key, sca::PayloadKind::kScalar), nullptr);

  cache.store(key, sca::PayloadKind::kScalar, some_bytes(24));
  const auto hit = cache.lookup(key, sca::PayloadKind::kScalar);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->kind, sca::PayloadKind::kScalar);
  EXPECT_EQ(hit->bytes, some_bytes(24));

  // A kind mismatch is a miss, never a misparse.
  EXPECT_EQ(cache.lookup(key, sca::PayloadKind::kSweep), nullptr);

  const sca::SolveCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.stores, 1u);
}

TEST(SolveCache, FifoEvictionIsAccounted) {
  sca::CacheOptions opt;
  opt.max_entries_per_shard = 2;
  sca::SolveCache cache{opt};
  for (std::uint64_t i = 0; i < 64; ++i) {
    cache.store(key_of(i), sca::PayloadKind::kScalar, some_bytes(8));
  }
  const sca::SolveCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.stores, 64u);
  // 64 keys over 16 shards with cap 2 must evict.
  EXPECT_GT(stats.evictions, 0u);
  // Memory-only: an evicted record is gone for good.
  std::size_t present = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    if (cache.lookup(key_of(i), sca::PayloadKind::kScalar) != nullptr) {
      ++present;
    }
  }
  EXPECT_LE(present, 32u);
}

// ---- persistent cache -------------------------------------------------------

TEST(SolveCache, DiskRoundTripAcrossInstances) {
  TempCacheDir dir;
  const sca::HashKey key = key_of(5);
  {
    sca::SolveCache writer{disk_options(dir)};
    EXPECT_TRUE(writer.persistent());
    writer.store(key, sca::PayloadKind::kSweep, some_bytes(100));
    EXPECT_TRUE(fs::exists(writer.record_path(key)));
  }
  sca::SolveCache reader{disk_options(dir)};
  const auto hit = reader.lookup(key, sca::PayloadKind::kSweep);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->bytes, some_bytes(100));
  EXPECT_EQ(reader.stats().hits, 1u);
}

TEST(SolveCache, EvictedRecordsSurviveOnDisk) {
  TempCacheDir dir;
  sca::CacheOptions opt = disk_options(dir);
  opt.max_entries_per_shard = 0;  // keep nothing in memory
  sca::SolveCache cache{opt};
  const sca::HashKey key = key_of(9);
  cache.store(key, sca::PayloadKind::kState, some_bytes(40));
  const auto hit = cache.lookup(key, sca::PayloadKind::kState);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->bytes, some_bytes(40));
}

TEST(SolveCache, StoreReplacesExistingRecord) {
  TempCacheDir dir;
  sca::SolveCache cache{disk_options(dir)};
  const sca::HashKey key = key_of(11);
  cache.store(key, sca::PayloadKind::kScalar, some_bytes(8, 1));
  cache.store(key, sca::PayloadKind::kScalar, some_bytes(8, 2));
  const auto hit = cache.lookup(key, sca::PayloadKind::kScalar);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->bytes, some_bytes(8, 2));
}

// ---- corruption robustness --------------------------------------------------

namespace {

/// Store one record on disk and return its path; the cache instance
/// keeps nothing in memory so every lookup re-reads the file.
struct DiskRecord {
  TempCacheDir dir;
  sca::SolveCache cache;
  sca::HashKey key = key_of(77);
  std::string path;

  DiskRecord() : cache([this] {
                   sca::CacheOptions opt;
                   opt.dir = dir.str();
                   opt.max_entries_per_shard = 0;
                   return opt;
                 }()) {
    cache.store(key, sca::PayloadKind::kSweep, some_bytes(64));
    path = cache.record_path(key);
  }
};

void overwrite_file(const std::string& path,
                    const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

}  // namespace

TEST(SolveCacheCorruption, TruncatedRecordIsAMiss) {
  DiskRecord rec;
  const std::vector<std::uint8_t> good = read_file(rec.path);
  ASSERT_GT(good.size(), 28u);
  for (const std::size_t keep :
       {std::size_t{1}, std::size_t{10}, std::size_t{28}, good.size() - 1}) {
    overwrite_file(rec.path,
                   {good.begin(), good.begin() + static_cast<long>(keep)});
    EXPECT_EQ(rec.cache.lookup(rec.key, sca::PayloadKind::kSweep), nullptr)
        << "kept " << keep << " of " << good.size() << " bytes";
  }
  EXPECT_GT(rec.cache.stats().corrupt, 0u);
}

TEST(SolveCacheCorruption, ZeroLengthRecordIsAMiss) {
  DiskRecord rec;
  overwrite_file(rec.path, {});
  EXPECT_EQ(rec.cache.lookup(rec.key, sca::PayloadKind::kSweep), nullptr);
  EXPECT_GT(rec.cache.stats().corrupt, 0u);
}

TEST(SolveCacheCorruption, VersionBumpedRecordIsAMiss) {
  DiskRecord rec;
  std::vector<std::uint8_t> bytes = read_file(rec.path);
  bytes[4] += 1;  // format_version lives right after the 4-byte magic
  overwrite_file(rec.path, bytes);
  EXPECT_EQ(rec.cache.lookup(rec.key, sca::PayloadKind::kSweep), nullptr);
  EXPECT_GT(rec.cache.stats().corrupt, 0u);
}

TEST(SolveCacheCorruption, WrongMagicIsAMiss) {
  DiskRecord rec;
  std::vector<std::uint8_t> bytes = read_file(rec.path);
  bytes[0] ^= 0xff;
  overwrite_file(rec.path, bytes);
  EXPECT_EQ(rec.cache.lookup(rec.key, sca::PayloadKind::kSweep), nullptr);
}

TEST(SolveCacheCorruption, FlippedPayloadBitFailsChecksum) {
  DiskRecord rec;
  std::vector<std::uint8_t> bytes = read_file(rec.path);
  bytes.back() ^= 0x01;  // payload ends the file
  overwrite_file(rec.path, bytes);
  EXPECT_EQ(rec.cache.lookup(rec.key, sca::PayloadKind::kSweep), nullptr);
  EXPECT_GT(rec.cache.stats().corrupt, 0u);
}

TEST(SolveCacheCorruption, TrailingGarbageIsAMiss) {
  DiskRecord rec;
  std::vector<std::uint8_t> bytes = read_file(rec.path);
  bytes.push_back(0xaa);
  overwrite_file(rec.path, bytes);
  EXPECT_EQ(rec.cache.lookup(rec.key, sca::PayloadKind::kSweep), nullptr);
}

TEST(SolveCacheCorruption, CorruptRecordIsReplacedByNextStore) {
  DiskRecord rec;
  overwrite_file(rec.path, some_bytes(13));
  EXPECT_EQ(rec.cache.lookup(rec.key, sca::PayloadKind::kSweep), nullptr);
  rec.cache.store(rec.key, sca::PayloadKind::kSweep, some_bytes(64));
  const auto hit = rec.cache.lookup(rec.key, sca::PayloadKind::kSweep);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->bytes, some_bytes(64));
}

// ---- fault injection --------------------------------------------------------

TEST(SolveCacheFault, ReadFaultsCountDownThenHeal) {
  TempCacheDir dir;
  sca::CacheOptions opt = disk_options(dir);
  opt.max_entries_per_shard = 0;  // force disk reads
  opt.fault.fail_reads = 2;
  sca::SolveCache cache{opt};
  const sca::HashKey key = key_of(21);
  cache.store(key, sca::PayloadKind::kScalar, some_bytes(8));
  EXPECT_EQ(cache.lookup(key, sca::PayloadKind::kScalar), nullptr);
  EXPECT_EQ(cache.lookup(key, sca::PayloadKind::kScalar), nullptr);
  // Budget exhausted: the record was never actually damaged.
  EXPECT_NE(cache.lookup(key, sca::PayloadKind::kScalar), nullptr);
  EXPECT_EQ(cache.stats().corrupt, 2u);
}

TEST(SolveCacheFault, WriteFaultDropsThePublish) {
  TempCacheDir dir;
  sca::CacheOptions opt = disk_options(dir);
  opt.fault.fail_writes = 1;
  const sca::HashKey key = key_of(22);
  {
    sca::SolveCache cache{opt};
    cache.store(key, sca::PayloadKind::kScalar, some_bytes(8));
    EXPECT_FALSE(fs::exists(cache.record_path(key)));
    // The next store heals and publishes.
    cache.store(key, sca::PayloadKind::kScalar, some_bytes(8));
    EXPECT_TRUE(fs::exists(cache.record_path(key)));
  }
  sca::SolveCache reader{disk_options(dir)};
  EXPECT_NE(reader.lookup(key, sca::PayloadKind::kScalar), nullptr);
}

// ---- options / resolution ---------------------------------------------------

TEST(CacheOptionsValidation, RejectsNegativeFaultBudgets) {
  sca::CacheOptions opt;
  opt.fault.fail_reads = -1;
  EXPECT_THROW(sca::SolveCache{opt}, std::invalid_argument);
  opt.fault.fail_reads = 0;
  opt.fault.fail_writes = -2;
  EXPECT_THROW(sca::SolveCache{opt}, std::invalid_argument);
}

TEST(RunContextCache, ExplicitCacheWinsOverDefault) {
  sca::SolveCache a{sca::CacheOptions{}};
  sca::SolveCache b{sca::CacheOptions{}};
  se::RunContext ctx;
  EXPECT_EQ(ctx.cache_sink(), sca::default_cache());
  ctx.cache = &a;
  EXPECT_EQ(ctx.cache_sink(), &a);

  sca::set_default_cache(&b);
  se::RunContext fallback;
  EXPECT_EQ(fallback.cache_sink(), &b);
  ctx.cache = &a;
  EXPECT_EQ(ctx.cache_sink(), &a);
  sca::set_default_cache(nullptr);
}

// ---- opt-layer memoization --------------------------------------------------

TEST(EvalMemo, InertWithoutCache) {
  const subscale::opt::EvalMemo memo;
  EXPECT_FALSE(memo.active());
  int calls = 0;
  const auto f = memo.wrap([&](double x) {
    ++calls;
    return 2.0 * x;
  });
  EXPECT_EQ(f(3.0), 6.0);
  EXPECT_EQ(f(3.0), 6.0);
  EXPECT_EQ(calls, 2);  // no memoization without a cache
}

TEST(EvalMemo, RepeatedEvaluationsReplay) {
  sca::SolveCache cache{sca::CacheOptions{}};
  const subscale::opt::EvalMemo memo(&cache, key_of(31));
  int calls = 0;
  const auto f = memo.wrap([&](double x) {
    ++calls;
    return x * x + 0.25;
  });
  const double first = f(1.5);
  const double again = f(1.5);
  EXPECT_EQ(calls, 1);
  // Bitwise: the replay returns the stored bits.
  EXPECT_EQ(std::memcmp(&first, &again, sizeof(double)), 0);
  EXPECT_EQ(f(2.5), 2.5 * 2.5 + 0.25);
  EXPECT_EQ(calls, 2);
}

TEST(EvalMemo, DistinctDomainsDoNotAlias) {
  sca::SolveCache cache{sca::CacheOptions{}};
  const subscale::opt::EvalMemo memo_a(&cache, key_of(1));
  const subscale::opt::EvalMemo memo_b(&cache, key_of(2));
  int calls = 0;
  const auto count = [&](double x) {
    ++calls;
    return x;
  };
  memo_a.eval(count, 1.0);
  memo_b.eval(count, 1.0);  // same x, different domain: must recompute
  EXPECT_EQ(calls, 2);
}

TEST(EvalMemo, BatchComputesOnlyMisses) {
  sca::SolveCache cache{sca::CacheOptions{}};
  const subscale::opt::EvalMemo memo(&cache, key_of(41));
  std::vector<double> computed;
  const auto batch =
      memo.wrap_batch([&](const std::vector<double>& xs) {
        std::vector<double> values;
        for (const double x : xs) {
          computed.push_back(x);
          values.push_back(3.0 * x);
        }
        return values;
      });
  const std::vector<double> all = batch({1.0, 2.0, 3.0});
  EXPECT_EQ(all, (std::vector<double>{3.0, 6.0, 9.0}));
  EXPECT_EQ(computed.size(), 3u);
  computed.clear();
  // 2.0 is cached; only the new points run.
  const std::vector<double> mixed = batch({2.0, 4.0});
  EXPECT_EQ(mixed, (std::vector<double>{6.0, 12.0}));
  EXPECT_EQ(computed, (std::vector<double>{4.0}));
}

// ---- TCAD wiring ------------------------------------------------------------

TEST(TcadCache, DeviceResolvesCacheAndReplaysSweeps) {
  TempCacheDir dir;
  sca::SolveCache cache{disk_options(dir)};
  se::RunContext ctx;
  ctx.cache = &cache;

  st::TcadDevice cold(nfet_90(), coarse_mesh(), {}, ctx);
  EXPECT_EQ(cold.solve_cache(), &cache);
  const st::SweepResult fresh = cold.id_vg(0.25, 0.0, 0.3, 4);
  ASSERT_TRUE(fresh.all_converged());

  // Uncached reference: identical problem, no cache.
  st::TcadDevice plain(nfet_90(), coarse_mesh(), {});
  EXPECT_EQ(plain.solve_cache(), nullptr);
  const st::SweepResult reference = plain.id_vg(0.25, 0.0, 0.3, 4);

  // Second device on the same cache: equilibrium restores, sweep replays.
  const std::uint64_t hits_before = cache.stats().hits;
  st::TcadDevice warm(nfet_90(), coarse_mesh(), {}, ctx);
  const st::SweepResult replay = warm.id_vg(0.25, 0.0, 0.3, 4);
  EXPECT_GT(cache.stats().hits, hits_before);

  ASSERT_EQ(replay.size(), fresh.size());
  ASSERT_EQ(replay.size(), reference.size());
  for (std::size_t i = 0; i < replay.size(); ++i) {
    // Bitwise: cached, replayed, and uncached curves agree exactly.
    EXPECT_EQ(replay[i].vg, fresh[i].vg);
    EXPECT_EQ(replay[i].id, fresh[i].id);
    EXPECT_EQ(replay[i].id, reference[i].id);
  }
}

TEST(TcadCache, FaultInjectionDisablesCaching) {
  TempCacheDir dir;
  sca::SolveCache cache{disk_options(dir)};
  se::RunContext ctx;
  ctx.cache = &cache;
  st::GummelOptions faulted;
  faulted.fault.stage = st::SolveStage::kPoisson;
  faulted.fault.count = 1;
  faulted.fault.min_bias = 0.18;
  faulted.fault.max_bias = 0.22;
  st::TcadDevice dev(nfet_90(), coarse_mesh(), faulted, ctx);
  EXPECT_EQ(dev.solve_cache(), nullptr);
  EXPECT_EQ(cache.stats().stores, 0u);
}

TEST(TcadCache, CorruptedSweepRecordRecomputes) {
  TempCacheDir dir;
  sca::CacheOptions opt = disk_options(dir);
  opt.max_entries_per_shard = 0;  // all lookups hit the disk image
  sca::SolveCache cache{opt};
  se::RunContext ctx;
  ctx.cache = &cache;

  st::TcadDevice dev(nfet_90(), coarse_mesh(), {}, ctx);
  const st::SweepResult fresh = dev.id_vg(0.25, 0.0, 0.3, 4);
  ASSERT_TRUE(fresh.all_converged());

  const sca::HashKey sweep = sca::sweep_key(
      sca::device_solve_key(nfet_90(), coarse_mesh(), {}), 0.25, 0.0, 0.3,
      4);
  overwrite_file(cache.record_path(sweep), some_bytes(20));

  st::TcadDevice again(nfet_90(), coarse_mesh(), {}, ctx);
  const st::SweepResult recomputed = again.id_vg(0.25, 0.0, 0.3, 4);
  EXPECT_GT(cache.stats().corrupt, 0u);
  ASSERT_EQ(recomputed.size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(recomputed[i].id, fresh[i].id);
  }
}

TEST(TcadCache, WarmStartSeedsFromNearestState) {
  TempCacheDir dir;
  sca::SolveCache cache{disk_options(dir)};
  se::RunContext ctx;
  ctx.cache = &cache;

  // Populate: a sweep leaves its final state (vg=0.3, vd=0.25) behind.
  {
    st::TcadDevice dev(nfet_90(), coarse_mesh(), {}, ctx);
    ASSERT_TRUE(dev.id_vg(0.25, 0.0, 0.3, 4).all_converged());
  }
  // A DIFFERENT sweep on the same device misses the sweep record but can
  // warm-start its ramp from the cached neighbor.
  st::TcadDevice dev(nfet_90(), coarse_mesh(), {}, ctx);
  const st::SweepResult swept = dev.id_vg(0.25, 0.25, 0.35, 3);
  EXPECT_TRUE(swept.all_converged());
  EXPECT_GT(cache.stats().warmstarts, 0u);
}

// ---- crash-tolerant publish (multi-process store hardening) -----------------

TEST(AtomicWriteFile, RoundTripsWithAndWithoutFsync) {
  TempCacheDir dir;
  const std::string path = dir.str() + "/nested/dir/file.bin";
  const std::vector<std::uint8_t> payload = some_bytes(257);
  ASSERT_TRUE(sca::atomic_write_file(path, payload, /*sync=*/true));
  std::vector<std::uint8_t> back;
  ASSERT_TRUE(sca::read_file_bytes(path, back));
  EXPECT_EQ(back, payload);
  // Replacing content is atomic too, and the no-fsync fast path (the
  // SUBSCALE_CACHE_FSYNC=0 configuration) writes the same bytes.
  const std::vector<std::uint8_t> second = some_bytes(64, 99);
  ASSERT_TRUE(sca::atomic_write_file(path, second, /*sync=*/false));
  ASSERT_TRUE(sca::read_file_bytes(path, back));
  EXPECT_EQ(back, second);
}

TEST(AtomicWriteFile, FsyncDefaultsOnWhenEnvUnset) {
  // The suite runs without SUBSCALE_CACHE_FSYNC in the environment, so
  // the latched default must be durable-by-default.
  EXPECT_TRUE(sca::fsync_enabled());
}

TEST(ConcurrentPublish, ThreadsSameKeyIdenticalPayload) {
  TempCacheDir dir;
  sca::SolveCache cache(disk_options(dir));
  const sca::HashKey key = key_of(1001);
  const std::vector<std::uint8_t> payload = some_bytes(512);
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        cache.store(key, sca::PayloadKind::kSweep, payload);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  // A fresh instance with no memory index reads purely off disk.
  sca::CacheOptions cold = disk_options(dir);
  cold.max_entries_per_shard = 0;
  sca::SolveCache reader(cold);
  const auto rec = reader.lookup(key, sca::PayloadKind::kSweep);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->bytes, payload);
  EXPECT_EQ(cache.stats().corrupt, 0u);
  EXPECT_EQ(reader.stats().corrupt, 0u);
}

TEST(ConcurrentPublish, ThreadsSameKeyDifferingPayloadsNeverTear) {
  TempCacheDir dir;
  sca::SolveCache cache(disk_options(dir));
  const sca::HashKey key = key_of(2002);
  const std::vector<std::uint8_t> a = some_bytes(2048, 3);
  const std::vector<std::uint8_t> b = some_bytes(4096, 5);
  std::thread wa([&] {
    for (int i = 0; i < 40; ++i) cache.store(key, sca::PayloadKind::kSweep, a);
  });
  std::thread wb([&] {
    for (int i = 0; i < 40; ++i) cache.store(key, sca::PayloadKind::kSweep, b);
  });
  // Concurrent cold readers must see a whole record or none — never a
  // torn mix (which the checksum would count as corrupt).
  sca::CacheOptions cold = disk_options(dir);
  cold.max_entries_per_shard = 0;
  sca::SolveCache reader(cold);
  for (int i = 0; i < 200; ++i) {
    const auto rec = reader.lookup(key, sca::PayloadKind::kSweep);
    if (rec != nullptr) {
      EXPECT_TRUE(rec->bytes == a || rec->bytes == b);
    }
  }
  wa.join();
  wb.join();
  // Last writer wins: the settled record is exactly one candidate.
  const auto final_rec = reader.lookup(key, sca::PayloadKind::kSweep);
  ASSERT_NE(final_rec, nullptr);
  EXPECT_TRUE(final_rec->bytes == a || final_rec->bytes == b);
  EXPECT_EQ(reader.stats().corrupt, 0u);
  EXPECT_EQ(cache.stats().corrupt, 0u);
}

TEST(ConcurrentPublish, ProcessesShareOneStore) {
  TempCacheDir dir;
  const sca::HashKey shared = key_of(3003);
  const std::vector<std::uint8_t> payload = some_bytes(1024, 11);
  constexpr int kProcs = 2;
  pid_t pids[kProcs] = {0, 0};
  for (int p = 0; p < kProcs; ++p) {
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: its own SolveCache over the same directory; hammer the
      // shared key with the identical payload plus a private key.
      sca::SolveCache mine(disk_options(dir));
      for (int i = 0; i < 30; ++i) {
        mine.store(shared, sca::PayloadKind::kSweep, payload);
      }
      mine.store(key_of(4000u + static_cast<unsigned>(p)),
                 sca::PayloadKind::kState, some_bytes(128, 13));
      _exit(mine.stats().corrupt == 0 ? 0 : 1);
    }
    pids[p] = pid;
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
  sca::SolveCache reader(disk_options(dir));
  const auto rec = reader.lookup(shared, sca::PayloadKind::kSweep);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->bytes, payload);
  for (int p = 0; p < kProcs; ++p) {
    EXPECT_NE(reader.lookup(key_of(4000u + static_cast<unsigned>(p)),
                            sca::PayloadKind::kState),
              nullptr);
  }
  EXPECT_EQ(reader.stats().corrupt, 0u);
}

TEST(StaleTempSweep, TornTempIsInvisibleSweptAndCounted) {
  TempCacheDir dir;
  sca::SolveCache cache(disk_options(dir));
  const sca::HashKey key = key_of(5005);
  cache.store(key, sca::PayloadKind::kSweep, some_bytes(96));

  // Simulate a writer SIGKILLed mid-publish: a zero-length temp and a
  // partial temp at the store root.
  const std::string torn_a = dir.str() + "/tmp-9999-0";
  const std::string torn_b = dir.str() + "/tmp-9999-1";
  { std::ofstream(torn_a).flush(); }
  { std::ofstream(torn_b) << "SUBC-torso"; }

  // Torn temps never affect lookups: the published record still reads,
  // an unpublished key is a plain miss, nothing counts as corrupt.
  EXPECT_NE(cache.lookup(key, sca::PayloadKind::kSweep), nullptr);
  EXPECT_EQ(cache.lookup(key_of(5006), sca::PayloadKind::kSweep), nullptr);
  EXPECT_EQ(cache.stats().corrupt, 0u);

  // Young temps survive an age-gated sweep (they could be live writers).
  EXPECT_EQ(cache.sweep_stale_temps(60.0), 0u);
  ASSERT_TRUE(fs::exists(torn_a));

  // Age them past the gate and sweep again: removed and counted.
  const auto old_time =
      fs::file_time_type::clock::now() - std::chrono::hours(1);
  fs::last_write_time(torn_a, old_time);
  fs::last_write_time(torn_b, old_time);
  EXPECT_EQ(cache.sweep_stale_temps(60.0), 2u);
  EXPECT_FALSE(fs::exists(torn_a));
  EXPECT_FALSE(fs::exists(torn_b));
  EXPECT_EQ(cache.stats().corrupt, 2u);
  // Real records are untouched.
  EXPECT_NE(cache.lookup(key, sca::PayloadKind::kSweep), nullptr);
}

// ---- solver-strategy key discrimination --------------------------------------

TEST(CacheTcadKeys, StrategyAndAcceleratorKnobsPerturbTheKey) {
  // A cached state is only replayable under the exact solver physics
  // that produced it: every cold-solve accelerator knob must change
  // the device key, or a Newton/mesh-continuation record could answer
  // a Gummel query.
  const sc::DeviceSpec spec = nfet_90();
  const st::MeshOptions mesh = coarse_mesh();
  const sca::HashKey base = sca::device_solve_key(spec, mesh, {});

  st::GummelOptions g;
  g.strategy = st::SolverStrategy::kNewton;
  EXPECT_NE(sca::device_solve_key(spec, mesh, g), base);
  g = st::GummelOptions{};
  g.strategy = st::SolverStrategy::kHybrid;
  EXPECT_NE(sca::device_solve_key(spec, mesh, g), base);
  g = st::GummelOptions{};
  g.mesh_continuation_levels = 2;
  EXPECT_NE(sca::device_solve_key(spec, mesh, g), base);
  g = st::GummelOptions{};
  g.density_tolerance = 1e-6;
  EXPECT_NE(sca::device_solve_key(spec, mesh, g), base);
  g = st::GummelOptions{};
  g.continuity.slotboom = true;
  EXPECT_NE(sca::device_solve_key(spec, mesh, g), base);
  g = st::GummelOptions{};
  g.newton.max_iterations += 5;
  EXPECT_NE(sca::device_solve_key(spec, mesh, g), base);
  g = st::GummelOptions{};
  g.newton.update_tolerance *= 0.1;
  EXPECT_NE(sca::device_solve_key(spec, mesh, g), base);

  // ...and the three strategies are pairwise distinct.
  st::GummelOptions gn, gh;
  gn.strategy = st::SolverStrategy::kNewton;
  gh.strategy = st::SolverStrategy::kHybrid;
  EXPECT_NE(sca::device_solve_key(spec, mesh, gn),
            sca::device_solve_key(spec, mesh, gh));
}

TEST(SolveCache, StateRecordsCarryTheProducingStrategyStamp) {
  // Equilibrium is solved by plain Gummel under EVERY strategy (the
  // coupled solver only accelerates bias points), so a Gummel device
  // and a Newton device publish byte-identical psi/n/p equilibrium
  // states — distinguishable only by the trailing provenance stamp
  // (strategy | levels << 8). The records must live under different
  // keys AND the stamps must disagree, so provenance survives even a
  // hypothetical key collision.
  sca::SolveCache cache;  // memory-only
  se::RunContext ctx;
  ctx.cache = &cache;

  st::GummelOptions gummel;
  st::GummelOptions newton;
  newton.strategy = st::SolverStrategy::kNewton;
  st::TcadDevice dev_g(nfet_90(), coarse_mesh(), gummel, ctx);
  st::TcadDevice dev_n(nfet_90(), coarse_mesh(), newton, ctx);

  const sca::HashKey key_g = sca::state_key(
      sca::device_solve_key(nfet_90(), coarse_mesh(), gummel), 0.0, 0.0,
      0.0, 0.0);
  const sca::HashKey key_n = sca::state_key(
      sca::device_solve_key(nfet_90(), coarse_mesh(), newton), 0.0, 0.0,
      0.0, 0.0);
  ASSERT_NE(key_g, key_n);

  const auto rec_g = cache.lookup(key_g, sca::PayloadKind::kState);
  const auto rec_n = cache.lookup(key_n, sca::PayloadKind::kState);
  ASSERT_NE(rec_g, nullptr);
  ASSERT_NE(rec_n, nullptr);
  const auto& bg = rec_g->bytes;
  const auto& bn = rec_n->bytes;
  ASSERT_EQ(bg.size(), bn.size());
  ASSERT_GE(bg.size(), 8u);
  // Identical physics payload...
  EXPECT_TRUE(std::equal(bg.begin(), bg.end() - 8, bn.begin()));
  // ...different provenance trailer.
  EXPECT_FALSE(std::equal(bg.end() - 8, bg.end(), bn.end() - 8));

  // The stamp encodes exactly (strategy | levels << 8), serialized the
  // same way every other u64 in the record is.
  sca::ByteWriter wg, wn;
  wg.u64(static_cast<std::uint64_t>(st::SolverStrategy::kGummel));
  wn.u64(static_cast<std::uint64_t>(st::SolverStrategy::kNewton));
  EXPECT_TRUE(std::equal(bg.end() - 8, bg.end(), wg.take().begin()));
  EXPECT_TRUE(std::equal(bn.end() - 8, bn.end(), wn.take().begin()));
}
