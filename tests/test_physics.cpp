#include <gtest/gtest.h>

#include <cmath>

#include "physics/constants.h"
#include "physics/fermi.h"
#include "physics/mobility.h"
#include "physics/silicon.h"
#include "physics/units.h"

namespace sp = subscale::physics;
namespace su = subscale::units;

// ---- constants & units -----------------------------------------------------

TEST(Constants, ThermalVoltageAt300K) {
  EXPECT_NEAR(sp::kVt300, 0.025852, 1e-5);
  EXPECT_DOUBLE_EQ(sp::thermal_voltage(300.0), sp::kVt300);
}

TEST(Constants, PermittivityOrdering) {
  EXPECT_GT(sp::kEpsSi, sp::kEpsSiO2);
  EXPECT_NEAR(sp::kEpsSi / sp::kEps0, 11.7, 1e-12);
}

TEST(Units, RoundTrips) {
  EXPECT_DOUBLE_EQ(su::to_nm(su::nm(65.0)), 65.0);
  EXPECT_DOUBLE_EQ(su::to_per_cm3(su::per_cm3(1.52e18)), 1.52e18);
  EXPECT_DOUBLE_EQ(su::to_pA_per_um(su::pA_per_um(100.0)), 100.0);
  EXPECT_DOUBLE_EQ(su::to_mV(su::mV(250.0)), 250.0);
  EXPECT_DOUBLE_EQ(su::to_fF_per_um(su::fF_per_um(1.5)), 1.5);
}

TEST(Units, MagnitudesAreSi) {
  EXPECT_DOUBLE_EQ(su::nm(1.0), 1e-9);
  EXPECT_DOUBLE_EQ(su::per_cm3(1.0), 1e6);
  // 100 pA/um = 1e-10 A / 1e-6 m = 1e-4 A/m.
  EXPECT_DOUBLE_EQ(su::pA_per_um(100.0), 1e-4);
}

// ---- silicon ----------------------------------------------------------------

TEST(Silicon, BandgapAt300K) {
  EXPECT_NEAR(sp::silicon_bandgap_ev(300.0), 1.12, 0.01);
  // Bandgap shrinks with temperature.
  EXPECT_GT(sp::silicon_bandgap_ev(200.0), sp::silicon_bandgap_ev(400.0));
}

TEST(Silicon, IntrinsicDensityAnchors) {
  EXPECT_NEAR(sp::intrinsic_density(300.0), 1.0e16, 1e13);
  EXPECT_NEAR(sp::intrinsic_density_legacy(300.0), 1.45e16, 1e13);
  // Strong increase with temperature (roughly doubles every ~8 K near RT).
  EXPECT_GT(sp::intrinsic_density(310.0) / sp::intrinsic_density(300.0), 1.8);
}

TEST(Silicon, BulkPotentialTypicalDoping) {
  // Na = 1.52e18 cm^-3 (Table 2, 90nm): phi_F ~ 0.47-0.49 V.
  const double na = su::per_cm3(1.52e18);
  const double phi_f = sp::bulk_potential(na, 300.0);
  EXPECT_GT(phi_f, 0.44);
  EXPECT_LT(phi_f, 0.52);
  // Monotone in doping.
  EXPECT_GT(sp::bulk_potential(10.0 * na, 300.0), phi_f);
}

TEST(Silicon, BulkPotentialRejectsIntrinsic) {
  EXPECT_THROW(sp::bulk_potential(1e10, 300.0), std::invalid_argument);
}

TEST(Silicon, DepletionWidthMatchesClosedForm) {
  const double na = su::per_cm3(2.0e18);
  const double psi = 1.0;
  const double w = sp::depletion_width(na, psi);
  const double expected =
      std::sqrt(2.0 * sp::kEpsSi * psi / (sp::kQ * na));
  EXPECT_DOUBLE_EQ(w, expected);
  // ~25 nm for this doping.
  EXPECT_GT(su::to_nm(w), 15.0);
  EXPECT_LT(su::to_nm(w), 40.0);
}

TEST(Silicon, MaxDepletionWidthShrinksWithDoping) {
  const double w1 = sp::max_depletion_width(su::per_cm3(1e18), 300.0);
  const double w2 = sp::max_depletion_width(su::per_cm3(1e19), 300.0);
  EXPECT_GT(w1, w2);
}

TEST(Silicon, OxideCapacitance) {
  // 2.1 nm oxide: Cox = 3.9*eps0/2.1nm ~ 1.64e-2 F/m^2.
  EXPECT_NEAR(sp::oxide_capacitance(su::nm(2.1)), 1.644e-2, 2e-4);
  EXPECT_THROW(sp::oxide_capacitance(0.0), std::invalid_argument);
}

TEST(Silicon, DepletionCapacitanceConsistency) {
  const double na = su::per_cm3(2.4e18);
  const double cdep = sp::depletion_capacitance(na, 300.0);
  EXPECT_DOUBLE_EQ(cdep, sp::kEpsSi / sp::max_depletion_width(na, 300.0));
}

TEST(Silicon, BuiltinPotentialSourceDrainJunction) {
  // 2.4e18 channel against 1e20 S/D: Vbi slightly above 1 V.
  const double vbi =
      sp::builtin_potential(su::per_cm3(2.4e18), su::per_cm3(1e20), 300.0);
  EXPECT_GT(vbi, 1.0);
  EXPECT_LT(vbi, 1.2);
}

TEST(Silicon, FlatbandNPolyIsNegative) {
  const double vfb = sp::flatband_voltage_npoly_psub(su::per_cm3(2e18), 300.0);
  EXPECT_LT(vfb, -0.9);
  EXPECT_GT(vfb, -1.2);
}

// ---- mobility ----------------------------------------------------------------

TEST(Mobility, MasettiLimits) {
  // Lightly doped silicon approaches the lattice-limited values.
  const double mu_n_low =
      sp::masetti_mobility(sp::Carrier::kElectron, su::per_cm3(1e14));
  EXPECT_NEAR(mu_n_low * 1e4, 1417.0, 30.0);  // cm^2/Vs
  const double mu_p_low =
      sp::masetti_mobility(sp::Carrier::kHole, su::per_cm3(1e14));
  EXPECT_NEAR(mu_p_low * 1e4, 470.0, 20.0);
  // Heavy doping degrades strongly.
  const double mu_n_high =
      sp::masetti_mobility(sp::Carrier::kElectron, su::per_cm3(1e19));
  EXPECT_LT(mu_n_high, 0.3 * mu_n_low);
  // Electrons always faster than holes at equal doping.
  EXPECT_GT(mu_n_low, mu_p_low);
}

TEST(Mobility, MasettiMonotoneInDoping) {
  double prev = 1e9;
  for (double n_cm3 = 1e15; n_cm3 < 1e20; n_cm3 *= 10.0) {
    const double mu =
        sp::masetti_mobility(sp::Carrier::kElectron, su::per_cm3(n_cm3));
    EXPECT_LT(mu, prev) << "doping " << n_cm3;
    prev = mu;
  }
}

TEST(Mobility, CaugheyThomasReducesWithField) {
  const double mu0 = 0.04;  // 400 cm^2/Vs
  const double mu_low =
      sp::caughey_thomas_mobility(sp::Carrier::kElectron, mu0, 1e4, 300.0);
  const double mu_high =
      sp::caughey_thomas_mobility(sp::Carrier::kElectron, mu0, 1e7, 300.0);
  EXPECT_NEAR(mu_low, mu0, 0.01 * mu0);
  EXPECT_LT(mu_high, 0.5 * mu0);
  // In the saturated limit, mu*E -> vsat.
  const double e_big = 5e8;
  const double v = sp::caughey_thomas_mobility(sp::Carrier::kElectron, mu0,
                                               e_big, 300.0) *
                   e_big;
  EXPECT_NEAR(v, sp::saturation_velocity(sp::Carrier::kElectron, 300.0),
              0.05 * 1.07e5);
}

TEST(Mobility, SaturationVelocityTemperature) {
  EXPECT_NEAR(sp::saturation_velocity(sp::Carrier::kElectron, 300.0), 1.07e5,
              1e3);
  EXPECT_GT(sp::saturation_velocity(sp::Carrier::kElectron, 250.0),
            sp::saturation_velocity(sp::Carrier::kElectron, 350.0));
}

TEST(Mobility, SurfaceDegradationBounded) {
  for (double e = 0.0; e <= 2e8; e += 2e7) {
    const double f = sp::surface_degradation(sp::Carrier::kElectron, e);
    EXPECT_GT(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  EXPECT_DOUBLE_EQ(sp::surface_degradation(sp::Carrier::kElectron, 0.0), 1.0);
}

// ---- fermi / Bernoulli --------------------------------------------------------

TEST(Fermi, BernoulliAtZero) {
  EXPECT_DOUBLE_EQ(sp::bernoulli(0.0), 1.0);
  EXPECT_NEAR(sp::bernoulli(1e-12), 1.0, 1e-11);
}

TEST(Fermi, BernoulliIdentity) {
  // B(-x) = B(x) + x for all x.
  for (double x : {1e-8, 1e-4, 0.1, 1.0, 5.0, 50.0, 800.0}) {
    EXPECT_NEAR(sp::bernoulli(-x), sp::bernoulli(x) + x,
                1e-12 * std::max(1.0, x))
        << "x = " << x;
  }
}

TEST(Fermi, BernoulliLargeArguments) {
  EXPECT_NEAR(sp::bernoulli(800.0), 0.0, 1e-300);
  EXPECT_NEAR(sp::bernoulli(-800.0), 800.0, 1e-9);
}

TEST(Fermi, BernoulliDerivativeMatchesFiniteDifference) {
  for (double x : {-5.0, -0.5, -1e-7, 1e-7, 0.5, 5.0, 30.0}) {
    const double h = 1e-6 * std::max(1.0, std::abs(x));
    const double fd = (sp::bernoulli(x + h) - sp::bernoulli(x - h)) / (2 * h);
    EXPECT_NEAR(sp::bernoulli_derivative(x), fd, 1e-5)
        << "x = " << x;
  }
}

TEST(Fermi, CarrierDensities) {
  const double ni = 1.45e16;
  const double vt = sp::kVt300;
  // At psi = phi_n = phi_p = 0 both carriers sit at ni.
  EXPECT_DOUBLE_EQ(sp::electron_density(0.0, 0.0, ni, vt), ni);
  EXPECT_DOUBLE_EQ(sp::hole_density(0.0, 0.0, ni, vt), ni);
  // np product is invariant to psi at equal quasi-Fermi levels.
  const double n = sp::electron_density(0.3, 0.0, ni, vt);
  const double p = sp::hole_density(0.3, 0.0, ni, vt);
  EXPECT_NEAR(n * p, ni * ni, 1e-3 * ni * ni);
}

TEST(Fermi, NeutralPotentialSolvesNeutrality) {
  const double ni = 1.45e16;
  const double vt = sp::kVt300;
  for (double net : {1e24, -1e24, 1e20, -3e22}) {
    const double psi = sp::neutral_potential(net, ni, vt);
    const double n = sp::electron_density(psi, 0.0, ni, vt);
    const double p = sp::hole_density(psi, 0.0, ni, vt);
    // n - p = net doping (charge neutrality).
    EXPECT_NEAR((n - p - net) / std::abs(net), 0.0, 1e-10) << "net " << net;
  }
}

// ---- property sweep: depletion width vs doping ---------------------------------

class DepletionSweep : public ::testing::TestWithParam<double> {};

TEST_P(DepletionSweep, WidthInPlausibleNanometerRange) {
  const double na_cm3 = GetParam();
  const double w = sp::max_depletion_width(su::per_cm3(na_cm3), 300.0);
  // Across 1e17..1e19 cm^-3 the depletion width must stay in 3..120 nm.
  EXPECT_GT(su::to_nm(w), 3.0);
  EXPECT_LT(su::to_nm(w), 120.0);
}

INSTANTIATE_TEST_SUITE_P(DopingRange, DepletionSweep,
                         ::testing::Values(1e17, 3e17, 1e18, 3e18, 1e19));
