// Extension bench (paper Sec. 1 motivation): "timing variability grows
// dramatically as V_dd reduces". Monte-Carlo FO1 delay variability under
// Pelgrom V_th mismatch, across supply voltages and across both scaling
// strategies at the 32nm node. Two expected results:
//  (1) sigma/mu of delay explodes as V_dd drops toward subthreshold;
//  (2) the sub-V_th strategy's longer (bigger-area) gate gives it LOWER
//      variability than the super-V_th device — an un-advertised bonus
//      of the paper's proposal.

#include <cmath>

#include "common.h"
#include "circuits/variability.h"

using namespace subscale;

int main() {
  return bench::run(
      "ext_variability",
      "Extension — sub-V_th timing variability (Pelgrom mismatch)",
      "variability grows dramatically as V_dd reduces (Sec. 1); longer "
      "sub-V_th gates reduce it",
      "variability explodes toward subthreshold; lognormal closed form "
      "tracks the Monte-Carlo; sub-V_th device is the quieter one",
      [](bench::Record& rec) {
  const circuits::MismatchModel mismatch;
  io::TextTable t({"Vdd [mV]", "sigma/mu super-32nm", "sigma/mu sub-32nm",
                   "sigma_ln meas (super)", "sigma_ln pred (super)"});
  double sm_low = 0.0, sm_high = 0.0;
  double sub_adv_low = 0.0;
  bool prediction_tracks = true;
  for (const double vdd : {0.90, 0.70, 0.50, 0.30, 0.20}) {
    const auto r_sup = circuits::delay_variability(
        bench::study().super_inverter(3, vdd), mismatch);
    const auto r_sub = circuits::delay_variability(
        bench::study().sub_inverter(3, vdd), mismatch);
    t.add_row({io::fmt(vdd * 1e3, 3), io::fmt(r_sup.sigma_over_mean, 3),
               io::fmt(r_sub.sigma_over_mean, 3), io::fmt(r_sup.sigma_ln, 3),
               io::fmt(r_sup.sigma_ln_predicted, 3)});
    if (vdd == 0.90) sm_high = r_sup.sigma_over_mean;
    if (vdd == 0.20) {
      sm_low = r_sup.sigma_over_mean;
      sub_adv_low = r_sup.sigma_over_mean / r_sub.sigma_over_mean;
    }
    // The lognormal closed form assumes deep subthreshold; check it only
    // there (at nominal V_dd the delay is polynomial in V_th instead).
    if (vdd <= 0.30 &&
        std::abs(r_sup.sigma_ln / r_sup.sigma_ln_predicted - 1.0) > 0.35) {
      prediction_tracks = false;
    }
  }
  std::printf("%s\n", t.render(2).c_str());
  std::printf("variability growth 900 -> 200 mV: %.1fx\n", sm_low / sm_high);
  std::printf("sub-V_th variability advantage at 200 mV: %.2fx lower\n",
              sub_adv_low);

  rec.metric("variability_growth_x", sm_low / sm_high);
  rec.metric("sub_advantage_200mV_x", sub_adv_low);
  return sm_low > 2.0 * sm_high && sub_adv_low > 1.1 && prediction_tracks;
      });
}
