// Reproduction of Table 3: NFET parameters under the proposed sub-V_th
// scaling strategy — energy-optimal L_poly with co-optimized doping and
// I_off fixed at 100 pA/um; the C_L S_S^2 / C_L S_S factors are the
// paper's energy and delay metrics (Eqs. 6 and 8).

#include <cmath>

#include "common.h"

using namespace subscale;

int main() {
  return bench::run(
      "table3_subvth", "Table 3 — NFET parameters under sub-V_th scaling",
      "Lpoly 95/75/60/45nm, Nsub 1.61/1.99/2.53/3.19e18, Nhalo 2.02/2.73/"
      "2.93/4.89e18, CL*SS^2 1.00/0.80/0.65/0.51, CL*SS 1.00/0.80/0.65/0.50",
      "energy-optimal Lpoly within 15% of Table 3 at every node; both "
      "factors fall monotonically",
      [](bench::Record& rec) {
  struct PaperRow {
    double lpoly, nsub, nhalo, efac, dfac;
  };
  const PaperRow paper[4] = {
      {95.0, 1.61, 2.02, 1.00, 1.00},
      {75.0, 1.99, 2.73, 0.80, 0.80},
      {60.0, 2.53, 2.93, 0.65, 0.65},
      {45.0, 3.19, 4.89, 0.51, 0.50},
  };

  const auto& devices = bench::study().sub_devices();
  const double e0 = devices.front().energy_factor_raw;
  const double d0 = devices.front().delay_factor_raw;

  io::TextTable t({"node", "Lpoly,opt[nm] (paper)", "Tox[nm]",
                   "Nsub[e18] (paper)", "Nhalo[e18] (paper)", "SS[mV/dec]",
                   "Ioff[pA/um]", "CL*SS^2 (paper)", "CL*SS (paper)"});
  bool lpoly_within = true;
  bool factors_fall = true;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const auto& s = devices[i];
    const double efac = s.energy_factor_raw / e0;
    const double dfac = s.delay_factor_raw / d0;
    t.add_row({s.device.node.name,
               io::fmt(s.lpoly_opt_nm, 3) + " (" + io::fmt(paper[i].lpoly, 2) +
                   ")",
               io::fmt(s.device.node.tox_nm, 3),
               io::fmt(s.device.nsub_cm3 / 1e18, 3) + " (" +
                   io::fmt(paper[i].nsub, 3) + ")",
               io::fmt(s.device.nhalo_net_cm3 / 1e18, 3) + " (" +
                   io::fmt(paper[i].nhalo, 3) + ")",
               io::fmt(s.device.ss_mv_dec, 3),
               io::fmt(s.device.ioff_pa_um, 4),
               io::fmt(efac, 3) + " (" + io::fmt(paper[i].efac, 2) + ")",
               io::fmt(dfac, 3) + " (" + io::fmt(paper[i].dfac, 2) + ")"});
    if (std::abs(s.lpoly_opt_nm / paper[i].lpoly - 1.0) > 0.15) {
      lpoly_within = false;
    }
    if (i > 0 && (efac >= devices[i - 1].energy_factor_raw / e0 ||
                  dfac >= devices[i - 1].delay_factor_raw / d0)) {
      factors_fall = false;
    }
  }
  std::printf("%s\n", t.render(2).c_str());

  rec.metric("lpoly_opt_32nm_nm", devices.back().lpoly_opt_nm);
  rec.metric("energy_factor_32nm", devices.back().energy_factor_raw / e0);
  rec.metric("delay_factor_32nm", devices.back().delay_factor_raw / d0);
  return lpoly_within && factors_fall;
      });
}
