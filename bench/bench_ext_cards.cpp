// Extension bench: the technology-card layer. Two claims:
//
//   1. Cards are a faithful serialization: saving the paper deck to
//      JSON, loading it back, and running a one-node study reproduces
//      the in-memory card's design BITWISE (%.17g doubles round-trip).
//   2. The nanowire/GAA backend behaves like the literature says a
//      gate-all-around device should: near-ideal subthreshold swing
//      (~60 mV/dec at 300 K) at every node, flat across scaling, where
//      the bulk backend degrades — the same qualitative story the
//      paper tells for optimized-vs-conventional, now across backends.

#include <cstdio>

#include "common.h"
#include "cards/card_io.h"
#include "cards/technology_card.h"
#include "scaling/subvth_strategy.h"

using namespace subscale;

int main() {
  return bench::run(
      "ext_cards",
      "Extension — technology cards and the nanowire/GAA backend",
      "near-ideal GAA subthreshold swing (~60 mV/dec) independent of "
      "gate length, vs the bulk roll-up",
      "card JSON round-trips bitwise; nanowire S_S < bulk S_S at every "
      "node and stays within 5 mV/dec of 60",
      [](bench::Record& rec) {
  // ---- 1. save -> load -> bitwise-equal one-node study -------------------
  cards::TechnologyCard one_node = cards::paper_bulk_lstp();
  one_node.id = "paper_bulk_lstp_90nm";
  one_node.nodes.resize(1);
  const std::string path = "/tmp/bench_ext_cards_card.json";
  cards::save_card(one_node, path);
  const cards::TechnologyCard loaded = cards::load_card(path);
  const bool json_stable =
      cards::card_to_json(one_node) == cards::card_to_json(loaded);

  scaling::SubVthOptions mem_opts;
  mem_opts.env = one_node.env;
  mem_opts.ioff_pa_um = one_node.subvth_ioff_pa_um;
  scaling::SubVthOptions file_opts;
  file_opts.env = loaded.env;
  file_opts.ioff_pa_um = loaded.subvth_ioff_pa_um;
  const auto mem = scaling::design_subvth_device(
      one_node.resolved_nodes()[0], mem_opts);
  const auto file = scaling::design_subvth_device(
      loaded.resolved_nodes()[0], file_opts);
  const bool study_bitwise =
      mem.lpoly_opt_nm == file.lpoly_opt_nm &&
      mem.energy_factor_raw == file.energy_factor_raw &&
      mem.device.ss_mv_dec == file.device.ss_mv_dec &&
      mem.device.ioff_pa_um == file.device.ioff_pa_um;
  std::printf("card round-trip: json %s, 1-node study %s\n\n",
              json_stable ? "stable" : "CHANGED",
              study_bitwise ? "bitwise-equal" : "DIVERGED");

  // ---- 2. bulk vs nanowire, per node -------------------------------------
  const cards::TechnologyCard& bulk = cards::paper_bulk_lstp();
  const cards::TechnologyCard& nw = cards::nanowire_gaa();
  scaling::SubVthOptions bulk_opts;
  bulk_opts.env = bulk.env;
  scaling::SubVthOptions nw_opts;
  nw_opts.env = nw.env;

  io::TextTable t({"node", "backend", "Lpoly* [nm]", "SS [mV/dec]",
                   "Ioff [pA/um]", "tau [ps]"});
  bool swing_ok = true;
  for (const scaling::NodeInput& node : bulk.resolved_nodes()) {
    const auto b = scaling::design_subvth_device(node, bulk_opts);
    const auto n = scaling::design_subvth_device(node, nw_opts);
    t.add_row({node.name, "bulk", io::fmt(b.lpoly_opt_nm, 3),
               io::fmt(b.device.ss_mv_dec, 4),
               io::fmt(b.device.ioff_pa_um, 4),
               io::fmt(b.device.tau_ps, 4)});
    t.add_row({node.name, "nanowire", io::fmt(n.lpoly_opt_nm, 3),
               io::fmt(n.device.ss_mv_dec, 4),
               io::fmt(n.device.ioff_pa_um, 4),
               io::fmt(n.device.tau_ps, 4)});
    swing_ok = swing_ok && n.device.ss_mv_dec < b.device.ss_mv_dec &&
               std::abs(n.device.ss_mv_dec - 60.0) < 5.0;
    rec.metric("ss_bulk_" + node.name + "_mv_dec", b.device.ss_mv_dec);
    rec.metric("ss_nw_" + node.name + "_mv_dec", n.device.ss_mv_dec);
  }
  std::printf("%s\n", t.render(2).c_str());

  rec.metric("roundtrip_bitwise", study_bitwise ? 1.0 : 0.0);
  return json_stable && study_bitwise && swing_ok;
      });
}
