// Extension bench for the execution layer: run the full four-node
// ScalingStudy::tcad_validation serially (threads = 1) and through the
// task pool (threads = 4), check the determinism contract — the two
// runs must produce identical sweeps and reports — and record the
// wall-clock speedup in BENCH_ext_parallel_study.json. The speedup
// criterion only binds when the machine actually has >= 4 hardware
// threads; the determinism criterion always binds.

#include <cmath>
#include <thread>

#include "common.h"

using namespace subscale;

namespace {

bool identical(const std::vector<core::TcadNodeValidation>& a,
               const std::vector<core::TcadNodeValidation>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].node != b[i].node || a[i].lpoly_nm != b[i].lpoly_nm ||
        a[i].error != b[i].error ||
        a[i].sweep.size() != b[i].sweep.size() ||
        a[i].report.attempted != b[i].report.attempted ||
        a[i].report.failures.size() != b[i].report.failures.size()) {
      return false;
    }
    for (std::size_t p = 0; p < a[i].sweep.size(); ++p) {
      // Bitwise: the parallel fan-out must not change a single solve.
      if (a[i].sweep[p].vg != b[i].sweep[p].vg ||
          a[i].sweep[p].id != b[i].sweep[p].id) {
        return false;
      }
    }
    for (std::size_t p = 0; p < a[i].report.failures.size(); ++p) {
      if (a[i].report.failures[p].vg != b[i].report.failures[p].vg) {
        return false;
      }
    }
  }
  return true;
}

double timed_validation(const core::TcadValidationOptions& options,
                        std::vector<core::TcadNodeValidation>& out) {
  const auto start = std::chrono::steady_clock::now();
  out = bench::study().tcad_validation(options);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  return bench::run(
      "ext_parallel_study",
      "Extension — parallel TCAD validation (task-pool fan-out)",
      "node sweeps are independent; a task engine must cut wall-clock "
      "time without changing one bit of the results",
      "serial and 4-thread runs bitwise-identical; >= 2x speedup at 4 "
      "threads when the hardware has them",
      [](bench::Record& rec) {
  core::TcadValidationOptions options;  // all four nodes, default sweep

  std::vector<core::TcadNodeValidation> serial, parallel;
  options.run.exec = exec::ExecPolicy::serial();
  const double serial_ms = timed_validation(options, serial);
  options.run.exec = exec::ExecPolicy{4};
  const double parallel_ms = timed_validation(options, parallel);

  const double speedup = serial_ms / parallel_ms;
  const bool same = identical(serial, parallel);
  const std::size_t hw = std::thread::hardware_concurrency();

  io::TextTable t({"run", "threads", "wall [ms]", "usable nodes"});
  const auto usable = [](const std::vector<core::TcadNodeValidation>& r) {
    std::size_t n = 0;
    for (const auto& node : r) n += node.usable() ? 1 : 0;
    return n;
  };
  t.add_row({"serial", "1", io::fmt(serial_ms, 5),
             io::fmt(static_cast<double>(usable(serial)), 1)});
  t.add_row({"pooled", "4", io::fmt(parallel_ms, 5),
             io::fmt(static_cast<double>(usable(parallel)), 1)});
  std::printf("%s\n", t.render(2).c_str());
  std::printf("speedup: %.2fx on %zu hardware thread(s); results %s\n",
              speedup, hw, same ? "identical" : "DIVERGED");

  rec.metric("serial_ms", serial_ms);
  rec.metric("parallel_ms", parallel_ms);
  rec.metric("speedup_x", speedup);
  rec.metric("hardware_threads", static_cast<double>(hw));
  rec.metric("results_identical", same ? 1.0 : 0.0);

  // The determinism contract is unconditional; the 2x speedup target
  // only applies where 4 threads physically exist.
  const bool speedup_ok = hw < 4 || speedup >= 2.0;
  return same && speedup_ok;
      });
}
