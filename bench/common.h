#pragma once

/// Shared scaffolding for the figure/table reproduction benches. Every
/// bench prints the paper's reported values next to this library's
/// measured values, states the shape criterion it targets, and emits a
/// machine-readable BENCH_<name>.json timing record through bench::run
/// so cross-run trajectories (wall time, headline metrics, shape
/// verdict) can be tracked without scraping stdout. When
/// SUBSCALE_PERFDB_DIR is set, every record is ALSO appended to the
/// perf-history store there (src/perfdb; SUBSCALE_GIT_REV stamps the
/// revision), which is what tools/obs_trend gates trends over.
///
/// Telemetry: bench::run installs a process-wide MetricsRegistry (via
/// obs::set_default_registry) before the body runs, preregisters the
/// standard metric schema, and writes the snapshot into the record's
/// "obs" block — so every BENCH json carries the full counter set
/// (gummel/bicgstab iterations, retries, pool utilization, ...) and
/// tools/bench_schema.sh can validate it. Set SUBSCALE_METRICS=0 (or
/// "off") to benchmark the disabled-registry fast path.
///
/// Profiling: SUBSCALE_PROFILE=1 additionally installs a process-wide
/// SpanProfiler (obs::set_default_profiler), prints the self-time
/// roll-up after the shape verdict, and writes TRACE_<name>.json in
/// Chrome trace-event format — load it in chrome://tracing or
/// ui.perfetto.dev. The span totals also land in the "obs" block
/// (obs.profiler.spans / .spans_dropped), which stay zero when
/// profiling is off.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "cache/solve_cache.h"
#include "cards/technology_card.h"
#include "core/scaling_study.h"
#include "exec/policy.h"
#include "io/series.h"
#include "io/table.h"
#include "io/writer.h"
#include "io/trace_export.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/profiler.h"
#include "perfdb/record.h"
#include "perfdb/store.h"

namespace bench {

/// The technology card the bench study runs on: SUBSCALE_CARD (a
/// builtin id or a card-file path) or the paper deck when unset — so
/// any bench re-runs on another deck without a rebuild:
///   SUBSCALE_CARD=paper_bulk_hot350 ./bench_table2_supervth
inline const subscale::cards::TechnologyCard& card() {
  static const subscale::cards::TechnologyCard c = [] {
    const char* env = std::getenv("SUBSCALE_CARD");
    return env != nullptr && env[0] != '\0'
               ? subscale::cards::resolve_card(env)
               : subscale::cards::paper_bulk_lstp();
  }();
  return c;
}

/// One study shared inside a binary (each binary is its own process),
/// built on the active card.
inline const subscale::core::ScalingStudy& study() {
  static const subscale::core::ScalingStudy s(
      subscale::compact::paper_calibration(), [] {
        subscale::core::StudyOptions options;
        options.card = card();
        return options;
      }());
  return s;
}

inline void header(const char* title, const char* paper_claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("paper: %s\n", paper_claim);
  std::printf("================================================================\n");
}

inline void footer_shape(bool ok, const char* what) {
  std::printf("[shape %s] %s\n\n", ok ? "OK " : "MISS", what);
}

/// Node x-axis value (nm) for series, read off the active card's node
/// names ("90nm" -> 90.0) so extended decks chart correctly too.
inline double node_nm(std::size_t i) {
  return std::atof(study().node(i).name.c_str());
}

/// Headline numbers a bench wants in its JSON record, insertion-ordered.
class Record {
 public:
  void metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }
  const std::vector<std::pair<std::string, double>>& metrics() const {
    return metrics_;
  }

 private:
  std::vector<std::pair<std::string, double>> metrics_;
};

namespace detail {

/// The process-wide bench registry, or null when SUBSCALE_METRICS
/// disables telemetry. Also installs itself as the default registry on
/// first use so every layer below picks it up without plumbing.
inline subscale::obs::MetricsRegistry* bench_registry() {
  static subscale::obs::MetricsRegistry* reg = [] {
    const char* env = std::getenv("SUBSCALE_METRICS");
    if (env != nullptr &&
        (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0)) {
      return static_cast<subscale::obs::MetricsRegistry*>(nullptr);
    }
    static subscale::obs::MetricsRegistry registry;
    subscale::obs::names::preregister_standard(registry);
    subscale::obs::set_default_registry(&registry);
    return &registry;
  }();
  return reg;
}

/// The process-wide bench profiler, or null unless SUBSCALE_PROFILE
/// opts in (profiling records every span of every solve, so it is off
/// by default where the registry is on by default). Installs itself as
/// the default profiler so the whole stack below picks it up.
inline subscale::obs::SpanProfiler* bench_profiler() {
  static subscale::obs::SpanProfiler* prof = [] {
    const char* env = std::getenv("SUBSCALE_PROFILE");
    if (env == nullptr || std::strcmp(env, "0") == 0 ||
        std::strcmp(env, "off") == 0) {
      return static_cast<subscale::obs::SpanProfiler*>(nullptr);
    }
    static subscale::obs::SpanProfiler profiler;
    subscale::obs::set_default_profiler(&profiler);
    return &profiler;
  }();
  return prof;
}

inline void write_record(const std::string& name, bool ok, double wall_ms,
                         const Record& record, bool interrupted = false) {
  namespace io = subscale::io;
  namespace obs = subscale::obs;

  // Fold the span totals into the registry before snapshotting it, so
  // the "obs" block carries them; export the trace itself alongside.
  if (obs::SpanProfiler* prof = bench_profiler(); prof != nullptr) {
    const obs::ProfileSnapshot snap = prof->snapshot();
    if (obs::MetricsRegistry* reg = bench_registry(); reg != nullptr) {
      reg->counter(obs::names::kProfilerSpans).add(snap.spans.size());
      reg->counter(obs::names::kProfilerSpansDropped).add(snap.dropped);
    }
    std::printf("%s", snap.rollup_table().c_str());
    io::JsonWriter tw;
    io::write_chrome_trace(tw, snap);
    const std::string trace_path = "TRACE_" + name + ".json";
    if (std::FILE* tf = std::fopen(trace_path.c_str(), "w");
        tf != nullptr) {
      const std::string text = tw.str();
      std::fwrite(text.data(), 1, text.size(), tf);
      std::fclose(tf);
      std::printf("trace: %s (%zu spans)\n\n", trace_path.c_str(),
                  snap.spans.size());
    } else {
      std::fprintf(stderr, "bench: cannot write %s\n", trace_path.c_str());
    }
  }

  io::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value(name);
  w.key("card");
  w.value(card().id);
  w.key("shape_ok");
  w.value(ok);
  if (interrupted) {
    w.key("interrupted");
    w.value(true);
  }
  w.key("wall_ms");
  w.value(wall_ms);
  w.key("threads");
  w.value(static_cast<std::uint64_t>(
      subscale::exec::global_policy().resolved_threads()));
  w.key("metrics");
  w.begin_object();
  for (const auto& [key, value] : record.metrics()) {
    w.key(key);
    w.value(value);
  }
  w.end_object();
  if (subscale::obs::MetricsRegistry* reg = bench_registry();
      reg != nullptr) {
    w.key("obs");
    io::write_metrics_snapshot(w, reg->snapshot());
  }
  w.end_object();

  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  const std::string text = w.str();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);

  // SUBSCALE_PERFDB_DIR: additionally append this run to the perf
  // history (src/perfdb), the longitudinal form tools/obs_trend gates.
  // Interrupted records append too — stamped, so loaders exclude them
  // from baselines by default but forensics can still see them.
  if (const char* db_dir = std::getenv("SUBSCALE_PERFDB_DIR");
      db_dir != nullptr && db_dir[0] != '\0') {
    subscale::perfdb::PerfRecord pr;
    pr.bench = name;
    pr.card = card().id;
    if (const char* rev = std::getenv("SUBSCALE_GIT_REV");
        rev != nullptr) {
      pr.rev = rev;
    }
    pr.ts = static_cast<std::uint64_t>(std::time(nullptr));
    pr.shape_ok = ok;
    pr.interrupted = interrupted;
    pr.wall_ms = wall_ms;
    pr.threads = static_cast<std::uint64_t>(
        subscale::exec::global_policy().resolved_threads());
    pr.metrics = record.metrics();
    if (subscale::obs::MetricsRegistry* reg = bench_registry();
        reg != nullptr) {
      const obs::MetricsSnapshot snap = reg->snapshot();
      for (const auto& [key, value] : snap.counters) {
        pr.obs.emplace_back(key, static_cast<double>(value));
      }
      for (const auto& [key, value] : snap.gauges) {
        pr.obs.emplace_back(key, value);
      }
      for (const auto& h : snap.histograms) {
        pr.obs.emplace_back(h.name + ".count",
                            static_cast<double>(h.count));
        pr.obs.emplace_back(h.name + ".sum", h.sum);
      }
    }
    subscale::perfdb::PerfDb db(db_dir);
    if (!db.append(pr)) {
      std::fprintf(stderr, "bench: perfdb append to %s failed\n",
                   db.path_for(pr.bench).c_str());
    }
  }
}

/// State the interrupt handler needs to flush a partial record. A bench
/// is a single-document batch process, so one static slot suffices; the
/// `active` flag keeps the handler inert outside the timed body (and
/// after a first delivery, making a racing second signal harmless).
struct ActiveRun {
  std::string name;
  Record* record = nullptr;
  std::chrono::steady_clock::time_point start{};
  volatile std::sig_atomic_t active = 0;
};

inline ActiveRun& active_run() {
  static ActiveRun run;
  return run;
}

/// SIGINT/SIGTERM: flush the partial BENCH record (shape_ok false,
/// "interrupted" true, whatever metrics the body recorded so far, and
/// the trace under SUBSCALE_PROFILE=1), then re-raise with the default
/// disposition so the exit status still says "killed by signal".
/// Formatting JSON here is not strictly async-signal-safe; a bench is a
/// terminal batch tool where the alternative is losing the record, and
/// the worst torn outcome is an invalid file the next run overwrites —
/// the cache/orch layers never read BENCH json.
inline void interrupt_handler(int signo) {
  ActiveRun& run = active_run();
  if (run.active != 0) {
    run.active = 0;
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - run.start)
            .count();
    std::printf("\nbench interrupted (signal %d): flushing partial record\n",
                signo);
    write_record(run.name, /*ok=*/false, wall_ms, *run.record,
                 /*interrupted=*/true);
  }
  std::signal(signo, SIG_DFL);
  std::raise(signo);
}

}  // namespace detail

/// The common bench driver: prints the header, times the body, prints
/// the shape verdict, writes BENCH_<name>.json, and returns the process
/// exit code. The body fills `Record` with its headline metrics and
/// returns whether the shape criterion held. An interrupted bench
/// (SIGINT/SIGTERM mid-body) still flushes a valid partial record
/// marked "interrupted" before dying with the signal's default
/// disposition.
inline int run(const char* name, const char* title, const char* paper_claim,
               const char* shape_criterion,
               const std::function<bool(Record&)>& body) {
  detail::bench_registry();  // install telemetry before the body runs
  detail::bench_profiler();  // and the span profiler, if opted in
  // Honor SUBSCALE_CACHE / SUBSCALE_CACHE_DIR (no-op when unset): the
  // env-installed cache becomes the process default every layer's
  // cache_sink() resolves to, and its traffic lands in the "obs" block
  // as the cache.* counters.
  subscale::cache::install_env_cache();
  header(title, paper_claim);
  Record record;
  const auto start = std::chrono::steady_clock::now();
  detail::ActiveRun& active = detail::active_run();
  active.name = name;
  active.record = &record;
  active.start = start;
  active.active = 1;
  std::signal(SIGINT, detail::interrupt_handler);
  std::signal(SIGTERM, detail::interrupt_handler);
  bool ok = false;
  try {
    ok = body(record);
  } catch (const std::exception& e) {
    std::printf("bench aborted: %s\n", e.what());
  }
  active.active = 0;  // from here the normal record path owns the file
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  footer_shape(ok, shape_criterion);
  std::printf("wall time: %.1f ms (record: BENCH_%s.json)\n\n", wall_ms, name);
  detail::write_record(name, ok, wall_ms, record);
  return ok ? 0 : 1;
}

}  // namespace bench
