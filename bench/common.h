#pragma once

/// Shared scaffolding for the figure/table reproduction benches. Every
/// bench prints the paper's reported values next to this library's
/// measured values, and states the shape criterion it targets.

#include <cstdio>
#include <string>

#include "core/scaling_study.h"
#include "io/series.h"
#include "io/table.h"

namespace bench {

/// One study shared inside a binary (each binary is its own process).
inline const subscale::core::ScalingStudy& study() {
  static const subscale::core::ScalingStudy s;
  return s;
}

inline void header(const char* title, const char* paper_claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("paper: %s\n", paper_claim);
  std::printf("================================================================\n");
}

inline void footer_shape(bool ok, const char* what) {
  std::printf("[shape %s] %s\n\n", ok ? "OK " : "MISS", what);
}

/// Node x-axis value (nm) for series.
inline double node_nm(std::size_t i) {
  static const double kNm[4] = {90.0, 65.0, 45.0, 32.0};
  return kNm[i];
}

}  // namespace bench
