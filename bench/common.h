#pragma once

/// Shared scaffolding for the figure/table reproduction benches. Every
/// bench prints the paper's reported values next to this library's
/// measured values, states the shape criterion it targets, and emits a
/// machine-readable BENCH_<name>.json timing record through bench::run
/// so cross-run trajectories (wall time, headline metrics, shape
/// verdict) can be tracked without scraping stdout.

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/scaling_study.h"
#include "exec/policy.h"
#include "io/series.h"
#include "io/table.h"

namespace bench {

/// One study shared inside a binary (each binary is its own process).
inline const subscale::core::ScalingStudy& study() {
  static const subscale::core::ScalingStudy s;
  return s;
}

inline void header(const char* title, const char* paper_claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("paper: %s\n", paper_claim);
  std::printf("================================================================\n");
}

inline void footer_shape(bool ok, const char* what) {
  std::printf("[shape %s] %s\n\n", ok ? "OK " : "MISS", what);
}

/// Node x-axis value (nm) for series.
inline double node_nm(std::size_t i) {
  static const double kNm[4] = {90.0, 65.0, 45.0, 32.0};
  return kNm[i];
}

/// Headline numbers a bench wants in its JSON record, insertion-ordered.
class Record {
 public:
  void metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }
  const std::vector<std::pair<std::string, double>>& metrics() const {
    return metrics_;
  }

 private:
  std::vector<std::pair<std::string, double>> metrics_;
};

namespace detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // keys are ASCII ids
    out.push_back(c);
  }
  return out;
}

inline void write_record(const std::string& name, bool ok, double wall_ms,
                         const Record& record) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n", json_escape(name).c_str());
  std::fprintf(f, "  \"shape_ok\": %s,\n", ok ? "true" : "false");
  std::fprintf(f, "  \"wall_ms\": %.3f,\n", wall_ms);
  std::fprintf(f, "  \"threads\": %zu,\n",
               subscale::exec::global_policy().resolved_threads());
  std::fprintf(f, "  \"metrics\": {");
  const auto& metrics = record.metrics();
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::fprintf(f, "%s\n    \"%s\": %.17g", i == 0 ? "" : ",",
                 json_escape(metrics[i].first).c_str(), metrics[i].second);
  }
  std::fprintf(f, "%s}\n}\n", metrics.empty() ? "" : "\n  ");
  std::fclose(f);
}

}  // namespace detail

/// The common bench driver: prints the header, times the body, prints
/// the shape verdict, writes BENCH_<name>.json, and returns the process
/// exit code. The body fills `Record` with its headline metrics and
/// returns whether the shape criterion held.
inline int run(const char* name, const char* title, const char* paper_claim,
               const char* shape_criterion,
               const std::function<bool(Record&)>& body) {
  header(title, paper_claim);
  Record record;
  const auto start = std::chrono::steady_clock::now();
  bool ok = false;
  try {
    ok = body(record);
  } catch (const std::exception& e) {
    std::printf("bench aborted: %s\n", e.what());
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  footer_shape(ok, shape_criterion);
  std::printf("wall time: %.1f ms (record: BENCH_%s.json)\n\n", wall_ms, name);
  detail::write_record(name, ok, wall_ms, record);
  return ok ? 0 : 1;
}

}  // namespace bench
