// Extension bench for the solve cache: run the full four-node
// ScalingStudy::tcad_validation three times — uncached baseline, cold
// run populating a fresh on-disk cache, warm run reading it back
// through a brand-new SolveCache instance (so every hit comes off
// disk) — and check the caching contract: the warm run must be
// bitwise-identical to the uncached baseline while replaying instead
// of solving. Records cold-vs-warm speedup and the cache traffic in
// BENCH_ext_cache.json.

#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "common.h"

using namespace subscale;

namespace {

bool identical(const std::vector<core::TcadNodeValidation>& a,
               const std::vector<core::TcadNodeValidation>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].node != b[i].node || a[i].error != b[i].error ||
        a[i].sweep.size() != b[i].sweep.size() ||
        a[i].report.attempted != b[i].report.attempted ||
        a[i].report.failures.size() != b[i].report.failures.size()) {
      return false;
    }
    for (std::size_t p = 0; p < a[i].sweep.size(); ++p) {
      // Bitwise: a replayed sweep must not differ in a single bit.
      if (a[i].sweep[p].vg != b[i].sweep[p].vg ||
          a[i].sweep[p].id != b[i].sweep[p].id) {
        return false;
      }
    }
  }
  return true;
}

double timed_validation(const core::TcadValidationOptions& options,
                        std::vector<core::TcadNodeValidation>& out) {
  const auto start = std::chrono::steady_clock::now();
  out = bench::study().tcad_validation(options);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  return bench::run(
      "ext_cache",
      "Extension — persistent solve cache (content-addressed replay)",
      "a TCAD study re-run with unchanged inputs should pay disk-read "
      "prices, not solver prices, and lose nothing: replay is bitwise",
      "warm run >= 5x faster than cold, cache.hit > 0, warm results "
      "bitwise-identical to the uncached baseline",
      [](bench::Record& rec) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("subscale-bench-cache-" + std::to_string(::getpid()));
  fs::remove_all(dir);

  core::TcadValidationOptions options;
  // The cacheable workload: nodes whose sweeps fully converge. Failed
  // solves are deliberately never cached (a failure deserves a fresh
  // diagnosis every run), so the aggressive 45/32nm-class nodes would
  // only add a constant re-solve cost to both cold and warm runs.
  options.nodes = {0, 1};
  options.run.exec = exec::ExecPolicy::serial();

  // Uncached baseline: explicit null-cache context (ignores any env
  // default the harness installed).
  cache::SolveCache off{cache::CacheOptions{}};
  std::vector<core::TcadNodeValidation> baseline, cold, warm;
  options.run.cache = &off;
  const double baseline_ms = timed_validation(options, baseline);

  double cold_ms = 0.0;
  double warm_ms = 0.0;
  cache::SolveCache::Stats cold_stats;
  cache::SolveCache::Stats warm_stats;
  {
    cache::SolveCache populate({.dir = dir.string()});
    options.run.cache = &populate;
    cold_ms = timed_validation(options, cold);
    cold_stats = populate.stats();
  }
  {
    // Fresh instance on the same directory: the in-memory index starts
    // empty, so every hit below is a real disk read.
    cache::SolveCache replay({.dir = dir.string()});
    options.run.cache = &replay;
    warm_ms = timed_validation(options, warm);
    warm_stats = replay.stats();
  }
  fs::remove_all(dir);

  const double speedup = cold_ms / warm_ms;
  const bool bitwise = identical(baseline, warm) && identical(baseline, cold);

  io::TextTable t({"run", "wall [ms]", "hits", "stores"});
  t.add_row({"uncached", io::fmt(baseline_ms, 5), "-", "-"});
  t.add_row({"cold (populate)", io::fmt(cold_ms, 5),
             io::fmt(static_cast<double>(cold_stats.hits), 0),
             io::fmt(static_cast<double>(cold_stats.stores), 0)});
  t.add_row({"warm (replay)", io::fmt(warm_ms, 5),
             io::fmt(static_cast<double>(warm_stats.hits), 0),
             io::fmt(static_cast<double>(warm_stats.stores), 0)});
  std::printf("%s\n", t.render(2).c_str());
  std::printf("cold->warm speedup: %.1fx; warm hits: %llu; replay %s\n",
              speedup,
              static_cast<unsigned long long>(warm_stats.hits),
              bitwise ? "bitwise-identical" : "DIVERGED");

  rec.metric("uncached_ms", baseline_ms);
  rec.metric("cold_ms", cold_ms);
  rec.metric("warm_ms", warm_ms);
  rec.metric("speedup_x", speedup);
  rec.metric("warm_hits", static_cast<double>(warm_stats.hits));
  rec.metric("warm_misses", static_cast<double>(warm_stats.misses));
  rec.metric("results_bitwise_identical", bitwise ? 1.0 : 0.0);

  return bitwise && warm_stats.hits > 0 && speedup >= 5.0;
      });
}
