// Extension bench — the design-query service under load.
//
// Phase 1 (cold): an in-process daemon (Unix socket, 2 workers) takes a
// mixed query stream — TCAD sweeps, design rows, a figure series,
// server_info — from 4 concurrent client threads issuing the SAME
// request list, so identical in-flight queries exercise the coalescing
// path and repeated sweeps exercise the solve cache. Reports throughput
// and p50/p95/p99 response latency.
//
// Phase 2 (restart, warm): the daemon is torn down and a FRESH server —
// new Dispatcher, new SolveCache handle — comes up on the same cache
// directory, replaying the sweep queries from the persistent cache.
// The shape criterion demands the warm responses be byte-identical to
// the cold ones: a daemon restarted onto its cache dir recovers the
// exact same answers (the chaos smoke in tools/check.sh SIGKILLs a
// real daemon process over the same contract).

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "serve/client.h"
#include "serve/server.h"

using namespace subscale;

namespace {

/// The request list every client thread replays, ids left empty so
/// responses are byte-comparable across phases.
std::vector<serve::Query> request_list() {
  std::vector<serve::Query> list;
  for (std::size_t node : {std::size_t{0}, std::size_t{1}}) {
    serve::Query q;
    q.kind = serve::QueryKind::kSweep;
    q.node = node;
    q.points = 3;
    q.coarse_mesh = true;
    list.push_back(q);
  }
  for (core::Strategy strategy :
       {core::Strategy::kSuperVth, core::Strategy::kSubVth}) {
    for (std::size_t node = 0; node < 4; ++node) {
      serve::Query q;
      q.kind = serve::QueryKind::kDesign;
      q.strategy = strategy;
      q.node = node;
      list.push_back(q);
    }
  }
  {
    serve::Query q;
    q.kind = serve::QueryKind::kFigure;
    q.figure = "ss";
    q.strategy = core::Strategy::kSubVth;
    list.push_back(q);
  }
  {
    serve::Query q;
    q.kind = serve::QueryKind::kServerInfo;
    list.push_back(q);
  }
  return list;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

}  // namespace

int main() {
  return bench::run(
      "ext_serve",
      "Extension — design-query daemon under concurrent load",
      "a long-lived query service should batch identical work "
      "(coalescing + solve cache) and survive a restart with bitwise "
      "answer stability",
      "every response ok; warm restart replays the sweep responses "
      "byte-identical to the cold daemon's",
      [](bench::Record& rec) {
        namespace fs = std::filesystem;
        const fs::path dir =
            fs::temp_directory_path() /
            ("subscale-bench-serve-" + std::to_string(::getpid()));
        fs::remove_all(dir);
        fs::create_directories(dir);
        const std::string cache_dir = (dir / "cache").string();

        const std::vector<serve::Query> requests = request_list();
        constexpr std::size_t kClients = 4;

        bool all_ok = true;
        std::vector<double> latencies_ms;
        std::vector<std::string> cold_sweep_bytes;  // thread 0's copies
        std::uint64_t executed = 0;
        std::uint64_t coalesced = 0;
        double load_wall_ms = 0.0;

        {
          cache::SolveCache cold_cache([&] {
            cache::CacheOptions c;
            c.dir = cache_dir;
            return c;
          }());
          serve::ServerOptions options;
          options.socket_path = (dir / "sock").string();
          options.workers = 2;
          options.dispatcher.run.cache = &cold_cache;
          serve::Server server(options);
          server.start();

          std::vector<std::thread> threads;
          std::vector<std::vector<double>> per_thread(kClients);
          std::vector<bool> thread_ok(kClients, true);
          const auto load_start = std::chrono::steady_clock::now();
          for (std::size_t t = 0; t < kClients; ++t) {
            threads.emplace_back([&, t] {
              serve::Client client;
              if (!client.connect_unix(server.socket_path())) {
                thread_ok[t] = false;
                return;
              }
              for (const serve::Query& q : requests) {
                const auto start = std::chrono::steady_clock::now();
                serve::Result r;
                if (!client.roundtrip(q, r) || !r.ok) {
                  thread_ok[t] = false;
                  continue;
                }
                per_thread[t].push_back(
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count());
                if (t == 0 && q.kind == serve::QueryKind::kSweep) {
                  cold_sweep_bytes.push_back(client.last_response_text());
                }
              }
            });
          }
          for (auto& thread : threads) thread.join();
          load_wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - load_start)
                             .count();
          for (std::size_t t = 0; t < kClients; ++t) {
            all_ok = all_ok && thread_ok[t];
            latencies_ms.insert(latencies_ms.end(), per_thread[t].begin(),
                                per_thread[t].end());
          }
          executed = server.dispatcher().executed();
          coalesced = server.dispatcher().coalesced();
          server.stop();
        }

        std::sort(latencies_ms.begin(), latencies_ms.end());
        const double total_requests =
            static_cast<double>(kClients * requests.size());
        rec.metric("serve.load.requests", total_requests);
        rec.metric("serve.load.clients", static_cast<double>(kClients));
        rec.metric("serve.load.throughput_rps",
                   load_wall_ms > 0.0
                       ? total_requests / (load_wall_ms / 1e3)
                       : 0.0);
        rec.metric("serve.load.p50_ms", percentile(latencies_ms, 0.50));
        rec.metric("serve.load.p95_ms", percentile(latencies_ms, 0.95));
        rec.metric("serve.load.p99_ms", percentile(latencies_ms, 0.99));
        rec.metric("serve.load.executed", static_cast<double>(executed));
        rec.metric("serve.load.coalesced", static_cast<double>(coalesced));
        std::printf(
            "load: %zu clients x %zu requests, %.1f req/s "
            "(p50 %.2f ms, p95 %.2f ms, p99 %.2f ms)\n",
            kClients, requests.size(),
            total_requests / (load_wall_ms / 1e3),
            percentile(latencies_ms, 0.50), percentile(latencies_ms, 0.95),
            percentile(latencies_ms, 0.99));
        std::printf("dispatch: executed=%llu coalesced=%llu\n",
                    static_cast<unsigned long long>(executed),
                    static_cast<unsigned long long>(coalesced));

        // --- Phase 2: fresh server, same cache directory. ---
        bool warm_identical = all_ok && cold_sweep_bytes.size() == 2;
        std::vector<double> warm_latencies;
        std::uint64_t warm_hits = 0;
        {
          cache::SolveCache warm_cache([&] {
            cache::CacheOptions c;
            c.dir = cache_dir;
            return c;
          }());
          serve::ServerOptions options;
          options.socket_path = (dir / "sock2").string();
          options.workers = 2;
          options.dispatcher.run.cache = &warm_cache;
          serve::Server server(options);
          server.start();

          serve::Client client;
          if (client.connect_unix(server.socket_path())) {
            std::size_t sweep_index = 0;
            for (const serve::Query& q : requests) {
              if (q.kind != serve::QueryKind::kSweep) continue;
              const auto start = std::chrono::steady_clock::now();
              serve::Result r;
              if (!client.roundtrip(q, r) || !r.ok) {
                warm_identical = false;
                continue;
              }
              warm_latencies.push_back(
                  std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count());
              if (sweep_index >= cold_sweep_bytes.size() ||
                  client.last_response_text() !=
                      cold_sweep_bytes[sweep_index]) {
                warm_identical = false;
              }
              ++sweep_index;
            }
          } else {
            warm_identical = false;
          }
          warm_hits = warm_cache.stats().hits;
          server.stop();
        }
        std::sort(warm_latencies.begin(), warm_latencies.end());
        rec.metric("serve.warm.p50_ms", percentile(warm_latencies, 0.50));
        rec.metric("serve.warm.cache_hits", static_cast<double>(warm_hits));
        rec.metric("serve.warm.bitwise_identical",
                   warm_identical ? 1.0 : 0.0);
        std::printf(
            "restart: warm p50 %.2f ms, cache hits %llu, "
            "sweep responses %s\n",
            percentile(warm_latencies, 0.50),
            static_cast<unsigned long long>(warm_hits),
            warm_identical ? "BITWISE-IDENTICAL" : "DIVERGED");

        fs::remove_all(dir);
        return all_ok && warm_identical;
      });
}
