// Reproduction of Fig. 10: simulated inverter SNM under super-V_th vs
// sub-V_th scaling (at the paper's sub-V_th operating point). Paper: the
// sub-V_th strategy's SNM remains nearly constant with scaling and is
// 19 % larger than the super-V_th strategy's at the 32nm node.

#include <cmath>

#include "common.h"
#include "circuits/vtc.h"

using namespace subscale;

int main() {
  return bench::run(
      "fig10_snm_compare",
      "Fig. 10 — inverter SNM under both strategies (250 mV)",
      "sub-V_th SNM nearly constant; +19 % over super-V_th at 32nm",
      "double-digit SNM advantage at 32nm; sub-V_th SNM nearly flat",
      [](bench::Record& rec) {
  const double vdd = bench::study().options().vdd_subthreshold;
  io::Series snm_super("snm_super"), snm_sub("snm_sub");
  io::TextTable t(
      {"node", "SNM super [mV]", "SNM sub [mV]", "sub advantage"});
  for (std::size_t i = 0; i < bench::study().node_count(); ++i) {
    const auto sup = circuits::noise_margins(bench::study().super_inverter(i, vdd));
    const auto sub = circuits::noise_margins(bench::study().sub_inverter(i, vdd));
    snm_super.add(bench::node_nm(i), sup.snm * 1e3);
    snm_sub.add(bench::node_nm(i), sub.snm * 1e3);
    t.add_row({bench::study().node(i).name, io::fmt(sup.snm * 1e3, 4),
               io::fmt(sub.snm * 1e3, 4),
               io::fmt_pct(sub.snm / sup.snm - 1.0, 1)});
  }
  std::printf("%s\n", t.render(2).c_str());

  const double gain_32 =
      snm_sub.points().back().y / snm_super.points().back().y - 1.0;
  const double sub_drift = std::abs(snm_sub.total_relative_change());
  std::printf("32nm advantage: %+.1f%% (paper +19%%)\n", gain_32 * 100.0);
  std::printf("sub-V_th SNM drift across nodes: %.1f%% (paper: nearly "
              "constant)\n",
              sub_drift * 100.0);

  rec.metric("snm_advantage_32nm_pct", gain_32 * 100.0);
  rec.metric("snm_sub_drift_pct", sub_drift * 100.0);
  return gain_32 > 0.10 && gain_32 < 0.35 && sub_drift < 0.08;
      });
}
