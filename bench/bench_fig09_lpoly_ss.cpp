// Reproduction of Fig. 9: L_poly and S_S across nodes for the sub-V_th
// and super-V_th strategies. Paper: the sub-V_th L_poly is larger and
// scales more slowly (20-25 %/gen vs 30 %); its S_S stays ~80 mV/dec,
// varying by only 1.2 mV/dec, while the super-V_th S_S degrades.

#include <cmath>

#include "common.h"

using namespace subscale;

int main() {
  return bench::run(
      "fig09_lpoly_ss", "Fig. 9 — L_poly and S_S under both strategies",
      "sub-V_th: longer gates, slower scaling, flat S_S ~80 mV/dec",
      "sub-V_th gates longer, scaling slower than 30%/gen, S_S pinned "
      "near 80 mV/dec",
      [](bench::Record& rec) {
  io::Series lp_super("lpoly_super"), lp_sub("lpoly_sub");
  io::Series ss_super("ss_super"), ss_sub("ss_sub");
  io::TextTable t({"node", "Lpoly super [nm]", "Lpoly sub [nm]",
                   "SS super [mV/dec]", "SS sub [mV/dec]"});
  for (std::size_t i = 0; i < bench::study().node_count(); ++i) {
    const auto& sup = bench::study().super_devices()[i];
    const auto& sub = bench::study().sub_devices()[i];
    lp_super.add(bench::node_nm(i), sup.node.lpoly_nm);
    lp_sub.add(bench::node_nm(i), sub.lpoly_opt_nm);
    ss_super.add(bench::node_nm(i), sup.ss_mv_dec);
    ss_sub.add(bench::node_nm(i), sub.device.ss_mv_dec);
    t.add_row({sup.node.name, io::fmt(sup.node.lpoly_nm, 3),
               io::fmt(sub.lpoly_opt_nm, 3), io::fmt(sup.ss_mv_dec, 4),
               io::fmt(sub.device.ss_mv_dec, 4)});
  }
  std::printf("%s\n", t.render(2).c_str());

  bool sub_longer = true, sub_scales_slower = true;
  const auto rs = lp_sub.consecutive_ratios();
  for (std::size_t i = 0; i < 4; ++i) {
    if (lp_sub[i].y <= lp_super[i].y) sub_longer = false;
  }
  for (const double r : rs) {
    if (r <= 0.70) sub_scales_slower = false;
  }
  const double drift =
      std::abs(ss_sub.points().back().y - ss_sub.points().front().y);
  std::printf("sub-V_th Lpoly per-gen ratios: %.3f %.3f %.3f (paper "
              "0.75-0.80)\n",
              rs[0], rs[1], rs[2]);
  std::printf("sub-V_th S_S drift: %.2f mV/dec (paper 1.2)\n", drift);

  const bool flat = drift < 3.0 &&
                    std::abs(ss_sub.points().front().y - 80.0) < 3.0;
  rec.metric("ss_sub_drift_mv_dec", drift);
  rec.metric("lpoly_sub_32nm_nm", lp_sub.points().back().y);
  return sub_longer && sub_scales_slower && flat;
      });
}
