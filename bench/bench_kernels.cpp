// Library-performance microbenchmarks (google-benchmark): the numerical
// kernels behind the reproduction — banded LU, compact-model evaluation,
// VTC solves, FO1 transients, and a full TCAD Gummel bias point.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <random>

#include "circuits/delay.h"
#include "circuits/inverter.h"
#include "circuits/vtc.h"
#include "compact/mosfet.h"
#include "linalg/banded.h"
#include "linalg/banded_reference.h"
#include "opt/golden_section.h"
#include "scaling/supervth_strategy.h"
#include "tcad/continuity.h"
#include "tcad/gummel.h"

using namespace subscale;

namespace {

compact::DeviceSpec spec_90() {
  return compact::make_spec_from_table(doping::Polarity::kNfet, 65, 2.10,
                                       1.52e18, 3.63e18, 1.2, 1.0);
}

void BM_BandedLuFactorSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t bw = 41;
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  linalg::BandedMatrix a(n, bw, bw);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = (i > bw ? i - bw : 0); j <= std::min(n - 1, i + bw);
         ++j) {
      a.at(i, j) = (i == j) ? 8.0 + dist(rng) : dist(rng);
    }
  }
  std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    linalg::BandedLu lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_BandedLuFactorSolve)->Arg(400)->Arg(1000)->Arg(2000);

// The blocked forward-elimination in BandedLu is pinned bitwise to the
// textbook loop nest in ReferenceBandedLu (tier-1: test_linalg
// BandedReference.BlockedEliminationMatchesReferenceBitwise). These two
// benchmarks measure the speed side of that equivalence; the abort
// below makes a silent numerical drift impossible to misread as a win.
linalg::BandedMatrix make_bench_banded(std::size_t n, std::size_t bw) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  linalg::BandedMatrix a(n, bw, bw);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = (i > bw ? i - bw : 0); j <= std::min(n - 1, i + bw);
         ++j) {
      a.at(i, j) = (i == j) ? 8.0 + dist(rng) : dist(rng);
    }
  }
  return a;
}

void check_bitwise(const std::vector<double>& fast,
                   const std::vector<double>& ref, const char* what) {
  if (fast.size() != ref.size()) {
    std::fprintf(stderr, "BITWISE MISMATCH (%s): size\n", what);
    std::abort();
  }
  for (std::size_t i = 0; i < fast.size(); ++i) {
    if (std::memcmp(&fast[i], &ref[i], sizeof(double)) != 0) {
      std::fprintf(stderr, "BITWISE MISMATCH (%s): index %zu %.17g vs %.17g\n",
                   what, i, fast[i], ref[i]);
      std::abort();
    }
  }
}

void BM_BandedLuReferenceSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const linalg::BandedMatrix a = make_bench_banded(n, 41);
  std::vector<double> b(n, 1.0);
  check_bitwise(linalg::BandedLu(a).solve(b),
                linalg::ReferenceBandedLu(a).solve(b), "banded lu");
  for (auto _ : state) {
    linalg::ReferenceBandedLu lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_BandedLuReferenceSolve)->Arg(400)->Arg(1000)->Arg(2000);

// Scharfetter–Gummel assembly, fresh-buffers vs SgWorkspace reuse. The
// workspace caches edge geometry + zero-field mobilities across solves;
// its output is asserted bitwise-equal to the workspace-free path on
// the same Gummel iterate before timing either variant.
struct SgBenchFixture {
  tcad::DeviceStructure dev{spec_90()};
  std::vector<double> psi, n0, p0;
  SgBenchFixture() {
    tcad::DriftDiffusionSolver solver(dev);
    solver.solve_equilibrium();
    psi = solver.psi();
    n0 = solver.electron_density();
    p0 = solver.hole_density();
  }
};

SgBenchFixture& sg_fixture() {
  static SgBenchFixture fx;
  return fx;
}

void BM_SgAssemblyFresh(benchmark::State& state) {
  auto& fx = sg_fixture();
  std::vector<double> n = fx.n0;
  for (auto _ : state) {
    n = fx.n0;
    tcad::solve_continuity(fx.dev, physics::Carrier::kElectron, fx.psi,
                           fx.p0, n);
    benchmark::DoNotOptimize(n.data());
  }
}
BENCHMARK(BM_SgAssemblyFresh)->Unit(benchmark::kMicrosecond);

void BM_SgAssemblyWorkspace(benchmark::State& state) {
  auto& fx = sg_fixture();
  std::vector<double> n_ref = fx.n0;
  tcad::solve_continuity(fx.dev, physics::Carrier::kElectron, fx.psi, fx.p0,
                         n_ref);
  tcad::SgWorkspace ws;
  std::vector<double> n = fx.n0;
  tcad::solve_continuity(fx.dev, physics::Carrier::kElectron, fx.psi, fx.p0,
                         n, {}, nullptr, &ws);
  check_bitwise(n, n_ref, "sg workspace");
  for (auto _ : state) {
    n = fx.n0;
    tcad::solve_continuity(fx.dev, physics::Carrier::kElectron, fx.psi,
                           fx.p0, n, {}, nullptr, &ws);
    benchmark::DoNotOptimize(n.data());
  }
}
BENCHMARK(BM_SgAssemblyWorkspace)->Unit(benchmark::kMicrosecond);

void BM_CompactModelConstruction(benchmark::State& state) {
  const auto spec = spec_90();
  for (auto _ : state) {
    compact::CompactMosfet fet(spec);
    benchmark::DoNotOptimize(fet.subthreshold_swing());
  }
}
BENCHMARK(BM_CompactModelConstruction);

void BM_CompactDrainCurrent(benchmark::State& state) {
  const compact::CompactMosfet fet(spec_90());
  double v = 0.0;
  for (auto _ : state) {
    v += 1e-7;
    benchmark::DoNotOptimize(fet.drain_current(0.3 + v, 0.25));
  }
}
BENCHMARK(BM_CompactDrainCurrent);

void BM_VtcOutput(benchmark::State& state) {
  const auto inv = circuits::make_inverter(spec_90()).at_vdd(0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuits::vtc_output(inv, 0.125));
  }
}
BENCHMARK(BM_VtcOutput);

void BM_NoiseMargins(benchmark::State& state) {
  const auto inv = circuits::make_inverter(spec_90()).at_vdd(0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuits::noise_margins(inv));
  }
}
BENCHMARK(BM_NoiseMargins);

void BM_Fo1DelayTransient(benchmark::State& state) {
  const auto inv = circuits::make_inverter(spec_90());
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuits::fo1_delay(inv).tp);
  }
}
BENCHMARK(BM_Fo1DelayTransient);

void BM_SuperVthDesignFlow(benchmark::State& state) {
  const auto& node = scaling::paper_nodes()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(scaling::design_supervth_device(node));
  }
}
BENCHMARK(BM_SuperVthDesignFlow);

void BM_TcadEquilibrium(benchmark::State& state) {
  const tcad::DeviceStructure dev(spec_90());
  for (auto _ : state) {
    tcad::DriftDiffusionSolver solver(dev);
    solver.solve_equilibrium();
    benchmark::DoNotOptimize(solver.psi());
  }
}
BENCHMARK(BM_TcadEquilibrium)->Unit(benchmark::kMillisecond);

void BM_GoldenSection(benchmark::State& state) {
  const auto f = [](double x) { return (x - 0.3) * (x - 0.3); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opt::golden_section_minimize(f, -3.0, 3.0, 1e-9));
  }
}
BENCHMARK(BM_GoldenSection);

}  // namespace

BENCHMARK_MAIN();
