// Reproduction of Fig. 6: simulated energy per cycle and V_min for a
// chain of 30 inverters with activity 0.1, super-V_th roadmap, with the
// C_L S_S^2 factor overlaid. Paper: substantial energy reduction from
// 90nm to 32nm, V_min RISES by ~40 mV, and C_L S_S^2 tracks the
// simulated energy closely (validating Eq. 8).

#include <cmath>

#include "common.h"
#include "circuits/vmin.h"
#include "physics/units.h"
#include "scaling/subvth_strategy.h"

using namespace subscale;

int main() {
  return bench::run(
      "fig06_energy_vmin",
      "Fig. 6 — energy/cycle and V_min, 30-inverter chain, a=0.1",
      "energy falls 90->32nm; V_min rises ~40 mV; C_L S_S^2 tracks the "
      "energy",
      "energy falls, V_min rises tens of mV, C_L S_S^2 tracks measured "
      "energy within 30%",
      [](bench::Record& rec) {
  io::Series energy("energy_fJ"), vmin("vmin_mV"), factor("cl_ss2_norm");
  io::TextTable t({"node", "Vmin [mV]", "E/cycle [fJ]", "E_dyn [fJ]",
                   "E_leak [fJ]", "CL*SS^2 (norm)"});
  double factor0 = 0.0;
  double energy0 = 0.0;
  for (std::size_t i = 0; i < bench::study().node_count(); ++i) {
    const auto inv = bench::study().super_inverter(i, 0.3);
    const auto r = circuits::find_vmin(inv);
    const double f = scaling::energy_factor(
        bench::study().super_devices()[i].spec, bench::study().calibration());
    if (i == 0) {
      factor0 = f;
      energy0 = r.at_vmin.e_total;
    }
    energy.add(bench::node_nm(i), units::to_fJ(r.at_vmin.e_total));
    vmin.add(bench::node_nm(i), r.vmin * 1e3);
    factor.add(bench::node_nm(i), f / factor0);
    t.add_row({bench::study().node(i).name, io::fmt(r.vmin * 1e3, 4),
               io::fmt(units::to_fJ(r.at_vmin.e_total), 4),
               io::fmt(units::to_fJ(r.at_vmin.e_dynamic), 4),
               io::fmt(units::to_fJ(r.at_vmin.e_leakage), 4),
               io::fmt(f / factor0, 3)});
  }
  std::printf("%s\n", t.render(2).c_str());

  const double dvmin_mv =
      vmin.points().back().y - vmin.points().front().y;
  std::printf("V_min 90->32nm: %+.0f mV (paper: +40 mV)\n", dvmin_mv);
  std::printf("energy 90->32nm: %+.1f%%\n",
              energy.total_relative_change() * 100.0);

  // Eq. 8 check: the factor tracks the measured energy node by node.
  bool factor_tracks = true;
  for (std::size_t i = 0; i < 4; ++i) {
    const double measured =
        energy[i].y / units::to_fJ(energy0);
    if (std::abs(factor[i].y / measured - 1.0) > 0.30) factor_tracks = false;
  }

  rec.metric("vmin_rise_mv", dvmin_mv);
  rec.metric("energy_change_pct", energy.total_relative_change() * 100.0);
  return energy.total_relative_change() < -0.25 && dvmin_mv > 10.0 &&
         dvmin_mv < 80.0 && factor_tracks;
      });
}
