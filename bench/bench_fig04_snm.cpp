// Reproduction of Fig. 4: simulated inverter SNM at nominal V_dd and at
// V_dd = 250 mV across the super-V_th roadmap. Paper: the increase in
// S_S with scaling degrades the 250 mV SNM by more than 10 % between the
// 90nm and 32nm nodes.

#include "common.h"
#include "circuits/vtc.h"

using namespace subscale;

int main() {
  return bench::run(
      "fig04_snm", "Fig. 4 — inverter SNM, super-V_th scaling",
      ">10 % SNM degradation at 250 mV from 90nm to 32nm",
      "double-digit 250 mV SNM loss across the roadmap",
      [](bench::Record& rec) {
  io::Series snm_nom("snm_nominal"), snm_sub("snm_250mV");
  io::TextTable t({"node", "SNM @ Vdd,nom [mV]", "SNM @ 250mV [mV]",
                   "SNM/Vdd @ 250mV"});
  for (std::size_t i = 0; i < bench::study().node_count(); ++i) {
    const double vdd_nom = bench::study().node(i).vdd;
    const auto nm_nom =
        circuits::noise_margins(bench::study().super_inverter(i, vdd_nom));
    const auto nm_sub =
        circuits::noise_margins(bench::study().super_inverter(i, 0.25));
    snm_nom.add(bench::node_nm(i), nm_nom.snm * 1e3);
    snm_sub.add(bench::node_nm(i), nm_sub.snm * 1e3);
    t.add_row({bench::study().node(i).name, io::fmt(nm_nom.snm * 1e3, 4),
               io::fmt(nm_sub.snm * 1e3, 4),
               io::fmt_pct(nm_sub.snm / 0.25, 1)});
  }
  std::printf("%s\n", t.render(2).c_str());

  const double degradation = -snm_sub.total_relative_change();
  std::printf("250 mV SNM 90->32nm: %+.1f%% (paper: worse than -10%%)\n",
              -degradation * 100.0);
  rec.metric("snm_250mV_drop_pct", degradation * 100.0);

  return degradation > 0.08 && degradation < 0.35;
      });
}
