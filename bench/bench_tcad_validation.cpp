// Cross-validation bench: the from-scratch 2-D drift-diffusion solver
// (the MEDICI substitute) against the calibrated compact model on the
// 90nm super-V_th device — subthreshold slope, leakage scale and DIBL
// sign. This is the "device-level behaviour" check behind Sec. 2.3.1.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "common.h"
#include "compact/mosfet.h"
#include "physics/units.h"
#include "tcad/device_sim.h"
#include "exec/run_context.h"
#include "tcad/extract.h"

using namespace subscale;

int main() {
  return bench::run(
      "tcad_validation",
      "TCAD cross-validation — 2-D drift-diffusion vs compact",
      "MEDICI-class device simulation must agree with the calibrated "
      "analytical model on S_S and leakage scale",
      "S_S within 20%, clean exponential over >3 decades, positive DIBL",
      [](bench::Record& rec) {
  const auto spec = compact::make_spec_from_table(
      doping::Polarity::kNfet, 65, 2.10, 1.52e18, 3.63e18, 1.2, 1.0);
  const compact::CompactMosfet fet(spec);

  tcad::TcadDevice dev(spec);
  const tcad::SweepResult sweep = dev.id_vg(0.25, 0.0, 0.45, 12);
  const auto& resilience = sweep.report;
  std::printf("sweep resilience: %zu/%zu bias points converged\n",
              resilience.attempted - resilience.failures.size(),
              resilience.attempted);
  for (const auto& failed : resilience.failures) {
    std::printf("  skipped vg=%.3fV: %s\n", failed.vg,
                failed.report.summary().c_str());
  }
  std::size_t gummel_iters = 0;
  for (const auto& point : sweep.timings) {
    gummel_iters += point.gummel_iterations;
  }
  std::printf("solver effort: %zu Gummel outer iterations over %zu points\n",
              gummel_iters, sweep.timings.size());
  const auto ex = tcad::extract_from_sweep(sweep);

  io::TextTable t({"quantity", "TCAD (2-D DD)", "compact (calibrated)"});
  t.add_row({"S_S [mV/dec]", io::fmt(ex.ss * 1e3, 4),
             io::fmt(fet.subthreshold_swing() * 1e3, 4)});
  t.add_row({"Ioff(0, 0.25V) [pA/um]",
             io::fmt(units::to_pA_per_um(ex.ioff), 4),
             io::fmt(units::to_pA_per_um(fet.drain_current(0.0, 0.25) /
                                         spec.width),
                     4)});
  t.add_row({"Id(0.45, 0.25V) [nA/um]",
             io::fmt(ex.ion * 1e9 * 1e-6, 4),
             io::fmt(fet.drain_current(0.45, 0.25) / spec.width * 1e3, 4)});
  std::printf("%s\n", t.render(2).c_str());

  // DIBL sign: more drain bias must raise the subthreshold current.
  const double i_lo = dev.id_at(0.1, 0.10);
  const double i_hi = dev.id_at(0.1, 0.50);
  std::printf("DIBL check: Id(vg=0.1) at vd=0.1 -> 0.5: %.3e -> %.3e A/m\n",
              i_lo, i_hi);

  const double ss_err = std::abs(ex.ss / fet.subthreshold_swing() - 1.0);
  const double decades =
      std::log10(sweep.points.back().id / sweep.points.front().id);
  std::printf("S_S agreement: %.1f%%; sweep spans %.1f decades\n",
              ss_err * 100.0, decades);
  rec.metric("ss_error_pct", ss_err * 100.0);
  rec.metric("sweep_decades", decades);
  rec.metric("gummel_outer_iterations", static_cast<double>(gummel_iters));

  // Cold-solve acceleration: plain Gummel ramp vs hybrid Newton +
  // mesh continuation on the hard high-bias corners (full vdd on gate
  // and drain — the stiffest ramps the sweep machinery faces). Fresh
  // device + no_cache per measurement so every run pays the true cold
  // path; the equivalence tier (test_solver_equivalence) pins the two
  // strategies to identical states, so this compares cost, not answers.
  const std::vector<std::pair<double, double>> hard_points = {
      {spec.vdd, spec.vdd}, {spec.vdd * 0.75, spec.vdd}};
  const auto cold_time = [&](const tcad::GummelOptions& options,
                             subscale::exec::RunContext& ctx) {
    double total = 0.0;
    for (const auto& [vg, vd] : hard_points) {
      try {
        tcad::TcadDevice cold(spec, {}, options, ctx);
        const auto t0 = std::chrono::steady_clock::now();
        const double id = cold.id_at(vg, vd);
        const auto t1 = std::chrono::steady_clock::now();
        if (!std::isfinite(id) || id <= 0.0) return -1.0;
        total += std::chrono::duration<double>(t1 - t0).count();
      } catch (const std::exception& e) {
        std::printf("  cold solve (vg=%.2f vd=%.2f) failed: %s\n", vg, vd,
                    e.what());
        return -1.0;
      }
    }
    return total;
  };

  obs::MetricsRegistry accel_reg;
  subscale::exec::RunContext base_ctx, accel_ctx;
  base_ctx.no_cache = true;
  accel_ctx.no_cache = true;
  accel_ctx.metrics = &accel_reg;

  // Same enlarged iteration budget on both sides (the default 60-outer
  // cap stalls at the full-vdd corner regardless of strategy); only the
  // strategy knobs differ, so the ratio isolates the acceleration.
  tcad::GummelOptions baseline;  // plain Gummel, no continuation
  baseline.max_iterations = 400;
  tcad::GummelOptions accel = baseline;
  accel.strategy = tcad::SolverStrategy::kHybrid;
  accel.mesh_continuation_levels = 2;

  // Warm-up pass absorbs one-time costs (allocator, code paging), then
  // best-of-3 on each variant to shed scheduler noise.
  cold_time(baseline, base_ctx);
  cold_time(accel, accel_ctx);
  double t_base = 1e300, t_accel = 1e300;
  for (int r = 0; r < 3; ++r) {
    const double b = cold_time(baseline, base_ctx);
    const double a = cold_time(accel, accel_ctx);
    if (b < 0.0 || a < 0.0) {
      std::printf("cold-solve acceleration: solve FAILED\n");
      t_base = -1.0;
      break;
    }
    t_base = std::min(t_base, b);
    t_accel = std::min(t_accel, a);
  }
  const double cold_speedup = t_base > 0.0 ? t_base / t_accel : 0.0;
  std::printf(
      "cold-solve (hard high-bias, %zu points): gummel %.0f ms, "
      "hybrid+meshcont2 %.0f ms -> %.2fx\n",
      hard_points.size(), t_base * 1e3, t_accel * 1e3, cold_speedup);
  std::printf(
      "  accel counters: newton solves=%llu iters=%llu fallbacks=%llu | "
      "meshcont levels=%llu prolongations=%llu fallbacks=%llu\n",
      static_cast<unsigned long long>(
          accel_reg.counter(obs::names::kNewtonSolves).value()),
      static_cast<unsigned long long>(
          accel_reg.counter(obs::names::kNewtonIterations).value()),
      static_cast<unsigned long long>(
          accel_reg.counter(obs::names::kNewtonFallbacks).value()),
      static_cast<unsigned long long>(
          accel_reg.counter(obs::names::kMeshContLevels).value()),
      static_cast<unsigned long long>(
          accel_reg.counter(obs::names::kMeshContProlongations).value()),
      static_cast<unsigned long long>(
          accel_reg.counter(obs::names::kMeshContFallbacks).value()));
  rec.metric("cold_solve_ms_gummel", t_base * 1e3);
  rec.metric("cold_solve_ms_accel", t_accel * 1e3);
  rec.metric("cold_speedup", cold_speedup);

  return ss_err < 0.20 && i_hi > i_lo && decades > 3.0 &&
         ex.ss_r2 > 0.995 && resilience.all_converged() &&
         cold_speedup >= 3.0;
      });
}
