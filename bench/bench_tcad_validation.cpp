// Cross-validation bench: the from-scratch 2-D drift-diffusion solver
// (the MEDICI substitute) against the calibrated compact model on the
// 90nm super-V_th device — subthreshold slope, leakage scale and DIBL
// sign. This is the "device-level behaviour" check behind Sec. 2.3.1.

#include <cmath>
#include <cstdio>

#include "common.h"
#include "compact/mosfet.h"
#include "physics/units.h"
#include "tcad/device_sim.h"
#include "tcad/extract.h"

using namespace subscale;

int main() {
  return bench::run(
      "tcad_validation",
      "TCAD cross-validation — 2-D drift-diffusion vs compact",
      "MEDICI-class device simulation must agree with the calibrated "
      "analytical model on S_S and leakage scale",
      "S_S within 20%, clean exponential over >3 decades, positive DIBL",
      [](bench::Record& rec) {
  const auto spec = compact::make_spec_from_table(
      doping::Polarity::kNfet, 65, 2.10, 1.52e18, 3.63e18, 1.2, 1.0);
  const compact::CompactMosfet fet(spec);

  tcad::TcadDevice dev(spec);
  const tcad::SweepResult sweep = dev.id_vg(0.25, 0.0, 0.45, 12);
  const auto& resilience = sweep.report;
  std::printf("sweep resilience: %zu/%zu bias points converged\n",
              resilience.attempted - resilience.failures.size(),
              resilience.attempted);
  for (const auto& failed : resilience.failures) {
    std::printf("  skipped vg=%.3fV: %s\n", failed.vg,
                failed.report.summary().c_str());
  }
  std::size_t gummel_iters = 0;
  for (const auto& point : sweep.timings) {
    gummel_iters += point.gummel_iterations;
  }
  std::printf("solver effort: %zu Gummel outer iterations over %zu points\n",
              gummel_iters, sweep.timings.size());
  const auto ex = tcad::extract_from_sweep(sweep);

  io::TextTable t({"quantity", "TCAD (2-D DD)", "compact (calibrated)"});
  t.add_row({"S_S [mV/dec]", io::fmt(ex.ss * 1e3, 4),
             io::fmt(fet.subthreshold_swing() * 1e3, 4)});
  t.add_row({"Ioff(0, 0.25V) [pA/um]",
             io::fmt(units::to_pA_per_um(ex.ioff), 4),
             io::fmt(units::to_pA_per_um(fet.drain_current(0.0, 0.25) /
                                         spec.width),
                     4)});
  t.add_row({"Id(0.45, 0.25V) [nA/um]",
             io::fmt(ex.ion * 1e9 * 1e-6, 4),
             io::fmt(fet.drain_current(0.45, 0.25) / spec.width * 1e3, 4)});
  std::printf("%s\n", t.render(2).c_str());

  // DIBL sign: more drain bias must raise the subthreshold current.
  const double i_lo = dev.id_at(0.1, 0.10);
  const double i_hi = dev.id_at(0.1, 0.50);
  std::printf("DIBL check: Id(vg=0.1) at vd=0.1 -> 0.5: %.3e -> %.3e A/m\n",
              i_lo, i_hi);

  const double ss_err = std::abs(ex.ss / fet.subthreshold_swing() - 1.0);
  const double decades =
      std::log10(sweep.points.back().id / sweep.points.front().id);
  std::printf("S_S agreement: %.1f%%; sweep spans %.1f decades\n",
              ss_err * 100.0, decades);
  rec.metric("ss_error_pct", ss_err * 100.0);
  rec.metric("sweep_decades", decades);
  rec.metric("gummel_outer_iterations", static_cast<double>(gummel_iters));
  return ss_err < 0.20 && i_hi > i_lo && decades > 3.0 &&
         ex.ss_r2 > 0.995 && resilience.all_converged();
      });
}
