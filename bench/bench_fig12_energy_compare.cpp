// Reproduction of Fig. 12: simulated energy and V_min for the 30-inverter
// chain (a = 0.1) under both strategies. Paper: the sub-V_th strategy
// consumes ~23 % less energy at V_min at the 32nm node, with V_min
// changing by only ~10 mV across its roadmap (vs +40 mV for super-V_th).

#include <cmath>

#include "common.h"
#include "circuits/vmin.h"
#include "physics/units.h"

using namespace subscale;

int main() {
  return bench::run(
      "fig12_energy_compare",
      "Fig. 12 — energy and V_min under both strategies",
      "sub-V_th: less energy at V_min (paper -23% at 32nm) and a nearly "
      "constant V_min",
      "sub-V_th saving grows with scaling and is double-digit at 32nm; "
      "sub V_min flat while super V_min rises",
      [](bench::Record& rec) {
  io::Series e_super("e_super"), e_sub("e_sub");
  io::Series v_super("vmin_super"), v_sub("vmin_sub");
  io::TextTable t({"node", "Vmin super [mV]", "Vmin sub [mV]",
                   "E super [fJ]", "E sub [fJ]", "sub saving"});
  for (std::size_t i = 0; i < bench::study().node_count(); ++i) {
    const auto rs = circuits::find_vmin(bench::study().super_inverter(i, 0.3));
    const auto rb = circuits::find_vmin(bench::study().sub_inverter(i, 0.3));
    e_super.add(bench::node_nm(i), units::to_fJ(rs.at_vmin.e_total));
    e_sub.add(bench::node_nm(i), units::to_fJ(rb.at_vmin.e_total));
    v_super.add(bench::node_nm(i), rs.vmin * 1e3);
    v_sub.add(bench::node_nm(i), rb.vmin * 1e3);
    t.add_row({bench::study().node(i).name, io::fmt(rs.vmin * 1e3, 4),
               io::fmt(rb.vmin * 1e3, 4),
               io::fmt(units::to_fJ(rs.at_vmin.e_total), 4),
               io::fmt(units::to_fJ(rb.at_vmin.e_total), 4),
               io::fmt_pct(1.0 - rb.at_vmin.e_total / rs.at_vmin.e_total, 1)});
  }
  std::printf("%s\n", t.render(2).c_str());

  const double saving_32 = 1.0 - e_sub.points().back().y /
                                     e_super.points().back().y;
  const double sub_vmin_drift =
      std::abs(v_sub.points().back().y - v_sub.points().front().y);
  const double super_vmin_drift =
      v_super.points().back().y - v_super.points().front().y;
  std::printf("32nm energy saving: %.1f%% (paper 23%%)\n", saving_32 * 100.0);
  std::printf("V_min drift: sub %.0f mV (paper ~10), super %+.0f mV (paper "
              "+40)\n",
              sub_vmin_drift, super_vmin_drift);
  std::printf(
      "note: the measured saving runs below the paper's 23%% because the\n"
      "calibrated S_S gap between strategies is smaller than published and\n"
      "the balanced PFET of the sub-V_th device carries extra capacitance;\n"
      "the direction, growth with scaling, and V_min behaviour match.\n");

  const bool saving_grows =
      saving_32 > 1.0 - e_sub[1].y / e_super[1].y;
  rec.metric("energy_saving_32nm_pct", saving_32 * 100.0);
  rec.metric("vmin_drift_sub_mv", sub_vmin_drift);
  rec.metric("vmin_drift_super_mv", super_vmin_drift);
  return saving_32 > 0.08 && sub_vmin_drift < 20.0 &&
         super_vmin_drift > 10.0 && saving_grows;
      });
}
