// Reproduction of Fig. 7: S_S as a function of gate length for a 45nm
// device, comparing a FIXED doping profile (the node's super-V_th
// doping, diluted as the gate lengthens) against doping OPTIMIZED at
// each L_poly (the paper's Sec. 3.1 co-optimization). Paper: simply
// lengthening L_poly is not sufficient; optimizing doping alongside
// yields a lower S_S at every length.

#include "common.h"
#include "compact/mosfet.h"
#include "scaling/subvth_strategy.h"
#include "scaling/supervth_strategy.h"

using namespace subscale;

int main() {
  return bench::run(
      "fig07_ss_vs_lpoly", "Fig. 7 — S_S vs L_poly for the 45nm device",
      "fixed-doping curve sits above the per-L_poly optimized curve; "
      "both flatten at long L_poly",
      "S_S improves with gate length; doping co-optimization is never "
      "worse than the fixed profile",
      [](bench::Record& rec) {
  const auto& node = scaling::node_by_name("45nm");
  const auto super_dev =
      scaling::design_supervth_device(node, bench::study().calibration());

  io::Series fixed("ss_fixed"), opt("ss_optimized");
  io::TextTable t({"Lpoly [nm]", "SS fixed doping [mV/dec]",
                   "SS optimized doping [mV/dec]"});
  bool optimized_never_worse = true;
  for (double lpoly = 32.0; lpoly <= 96.0; lpoly += 8.0) {
    const auto fixed_spec = scaling::make_node_spec(
        node, lpoly, super_dev.spec.levels, 0.3);
    const compact::CompactMosfet fixed_fet(fixed_spec,
                                           bench::study().calibration());
    const auto opt_spec = scaling::optimize_subvth_doping(
        node, lpoly, {}, bench::study().calibration());
    const compact::CompactMosfet opt_fet(opt_spec,
                                         bench::study().calibration());
    const double ss_fixed = fixed_fet.subthreshold_swing() * 1e3;
    const double ss_opt = opt_fet.subthreshold_swing() * 1e3;
    fixed.add(lpoly, ss_fixed);
    opt.add(lpoly, ss_opt);
    t.add_row({io::fmt(lpoly, 3), io::fmt(ss_fixed, 4), io::fmt(ss_opt, 4)});
    if (ss_opt > ss_fixed + 0.3) optimized_never_worse = false;
  }
  std::printf("%s\n", t.render(2).c_str());

  // Shape: both curves fall with length; optimized <= fixed throughout.
  const bool both_fall = fixed.total_relative_change() < 0.0 &&
                         opt.total_relative_change() < 0.0;
  rec.metric("ss_fixed_change_pct", fixed.total_relative_change() * 100.0);
  rec.metric("ss_opt_change_pct", opt.total_relative_change() * 100.0);
  return both_fall && optimized_never_worse;
      });
}
