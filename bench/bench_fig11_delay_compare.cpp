// Reproduction of Fig. 11: simulated FO1 inverter delay at V_dd = 250 mV
// under both strategies, normalized to the 90nm node. Paper: the
// sub-V_th strategy reduces delay ~18 %/generation (graceful, monotonic),
// while the super-V_th characteristic is non-monotonic.

#include "common.h"
#include "circuits/delay.h"
#include "physics/units.h"

using namespace subscale;

int main() {
  return bench::run(
      "fig11_delay_compare",
      "Fig. 11 — FO1 delay at 250 mV under both strategies",
      "sub-V_th: ~18 %/gen monotone reduction; super-V_th: non-monotonic",
      "sub-V_th delay falls monotonically every generation (graceful "
      "scaling)",
      [](bench::Record& rec) {
  io::Series tp_super("tp_super"), tp_sub("tp_sub");
  io::TextTable t({"node", "tp super [ns]", "tp sub [ns]", "super (norm)",
                   "sub (norm)"});
  for (std::size_t i = 0; i < bench::study().node_count(); ++i) {
    const double sup =
        circuits::fo1_delay(bench::study().super_inverter(i, 0.25)).tp;
    const double sub =
        circuits::fo1_delay(bench::study().sub_inverter(i, 0.25)).tp;
    tp_super.add(bench::node_nm(i), sup);
    tp_sub.add(bench::node_nm(i), sub);
    t.add_row({bench::study().node(i).name,
               io::fmt(units::to_ns(sup), 4), io::fmt(units::to_ns(sub), 4),
               io::fmt(sup / tp_super[0].y, 3),
               io::fmt(sub / tp_sub[0].y, 3)});
  }
  std::printf("%s\n", t.render(2).c_str());

  const auto sub_ratios = tp_sub.consecutive_ratios();
  std::printf("sub-V_th per-gen delay ratios: %.3f %.3f %.3f (paper ~0.82)\n",
              sub_ratios[0], sub_ratios[1], sub_ratios[2]);

  bool sub_monotone = true;
  double worst = 0.0;
  for (const double r : sub_ratios) {
    if (r >= 1.0) sub_monotone = false;
    worst = std::max(worst, r);
  }
  const bool per_gen_reduction = worst < 0.95;  // a real reduction each gen
  rec.metric("tp_sub_worst_gen_ratio", worst);
  return sub_monotone && per_gen_reduction;
      });
}
