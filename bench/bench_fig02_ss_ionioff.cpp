// Reproduction of Fig. 2: NFET inverse subthreshold slope and on/off
// current ratio (at V_dd = 250 mV) across the super-V_th roadmap.
// Paper claims: S_S degrades 11 % and I_on/I_off drops 60 % between the
// 90nm and 32nm nodes.

#include "common.h"
#include "compact/mosfet.h"

using namespace subscale;

int main() {
  return bench::run(
      "fig02_ss_ionioff",
      "Fig. 2 — S_S and I_on/I_off (V_dd = 250 mV), super-V_th",
      "S_S +11 % and I_on/I_off -60 % from 90nm to 32nm",
      "S_S degrades ~11-20%, Ion/Ioff drops ~50-75%",
      [](bench::Record& rec) {
  io::Series ss("ss_mv_dec"), ratio("ion_over_ioff");
  io::TextTable t(
      {"node", "SS [mV/dec]", "Ion(0.25,0.25) [nA/um]", "Ioff(0,0.25) [pA/um]",
       "Ion/Ioff"});
  const auto& devices = bench::study().super_devices();
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const compact::CompactMosfet fet(devices[i].spec,
                                     bench::study().calibration());
    const double ion = fet.ion_at(0.25);
    const double ioff = fet.drain_current(0.0, 0.25);
    ss.add(bench::node_nm(i), fet.subthreshold_swing() * 1e3);
    ratio.add(bench::node_nm(i), ion / ioff);
    t.add_row({devices[i].node.name, io::fmt(fet.subthreshold_swing() * 1e3, 4),
               io::fmt(ion / devices[i].spec.width * 1e9 * 1e-6, 4),
               io::fmt(ioff / devices[i].spec.width * 1e12 * 1e-6, 4),
               io::fmt(ion / ioff, 4)});
  }
  std::printf("%s\n", t.render(2).c_str());

  const double ss_rise = ss.total_relative_change();
  const double ratio_drop = -ratio.total_relative_change();
  std::printf("S_S 90->32nm: %+.1f%% (paper +11%%)\n", ss_rise * 100.0);
  std::printf("Ion/Ioff 90->32nm: %+.1f%% (paper -60%%)\n",
              -ratio_drop * 100.0);
  rec.metric("ss_rise_pct", ss_rise * 100.0);
  rec.metric("ion_ioff_drop_pct", ratio_drop * 100.0);

  return ss_rise > 0.08 && ss_rise < 0.25 && ratio_drop > 0.45 &&
         ratio_drop < 0.80;
      });
}
