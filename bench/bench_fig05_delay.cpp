// Reproduction of Fig. 5: simulated FO1 inverter delay at nominal V_dd
// and at 250 mV across the super-V_th roadmap. Paper: nominal delay
// improves (though slower than the generalized-scaling 30 %/gen); the
// 250 mV delay is NON-monotonic — it increases with scaling except at
// the 32nm node, because of the leakage-constrained V_th choices and
// degraded S_S.

#include <algorithm>

#include "common.h"
#include "circuits/delay.h"
#include "physics/units.h"

using namespace subscale;

int main() {
  return bench::run(
      "fig05_delay", "Fig. 5 — FO1 inverter delay, super-V_th scaling",
      "nominal delay improves < 30 %/gen; 250 mV delay non-monotonic "
      "(rises before the last node)",
      "nominal delay improves; the 250 mV delay is nearly flat — "
      "scaling's benefit vanishes in subthreshold",
      [](bench::Record& rec) {
  io::Series nom("tp_nominal"), sub("tp_250mV");
  io::TextTable t({"node", "tp @ Vdd,nom [ps]", "tp @ 250mV [ns]",
                   "tp,nom ratio/gen"});
  double prev_nom = 0.0;
  for (std::size_t i = 0; i < bench::study().node_count(); ++i) {
    const double vdd_nom = bench::study().node(i).vdd;
    const double tp_nom =
        circuits::fo1_delay(bench::study().super_inverter(i, vdd_nom)).tp;
    const double tp_sub =
        circuits::fo1_delay(bench::study().super_inverter(i, 0.25)).tp;
    nom.add(bench::node_nm(i), tp_nom);
    sub.add(bench::node_nm(i), tp_sub);
    t.add_row({bench::study().node(i).name,
               io::fmt(units::to_ps(tp_nom), 4),
               io::fmt(units::to_ns(tp_sub), 4),
               i == 0 ? std::string("-") : io::fmt(tp_nom / prev_nom, 3)});
    prev_nom = tp_nom;
  }
  std::printf("%s\n", t.render(2).c_str());

  // Shape: nominal monotone improvement but slower than 0.70x/gen, and
  // the 250 mV delay sees almost none of that benefit (per-generation
  // ratio > 0.9 at every step). The paper's stronger observation — a
  // rise at the early nodes — depends on V_th details it itself calls
  // fragile ("sub-Vth delay is exponentially sensitive to V_th; even
  // small changes ... may result in large fluctuations"); our calibrated
  // V_th trajectory yields a nearly flat curve instead of a hump, with
  // the same conclusion: performance-driven scaling does not buy
  // sub-V_th speed.
  const auto nom_ratios = nom.consecutive_ratios();
  bool nominal_improves_slowly = true;
  for (const double r : nom_ratios) {
    if (r >= 1.0 || r < 0.70) nominal_improves_slowly = false;
  }
  const auto sub_ratios = sub.consecutive_ratios();
  bool sub_barely_improves = true;
  for (const double r : sub_ratios) {
    if (r < 0.90) sub_barely_improves = false;
  }
  std::printf("nominal per-gen ratios: %.3f %.3f %.3f (paper: >0.70)\n",
              nom_ratios[0], nom_ratios[1], nom_ratios[2]);
  std::printf("250mV per-gen ratios:  %.3f %.3f %.3f (paper: ~1 or above "
              "early; here nearly flat)\n",
              sub_ratios[0], sub_ratios[1], sub_ratios[2]);
  rec.metric("tp_nominal_worst_gen_ratio",
             *std::max_element(nom_ratios.begin(), nom_ratios.end()));
  rec.metric("tp_250mV_worst_gen_ratio",
             *std::max_element(sub_ratios.begin(), sub_ratios.end()));

  return nominal_improves_slowly && sub_barely_improves;
      });
}
