// Reproduction of Fig. 8: the energy factor C_L S_S^2 and delay factor
// C_L S_S (at fixed I_off) as functions of L_poly for the 45nm device
// with co-optimized doping. Paper: both reach interior minima; the
// energy minimum sits at L_poly = 60 nm and the delay minimum is very
// shallow, so the energy-optimal length costs negligible delay.

#include <cmath>

#include "common.h"
#include "scaling/subvth_strategy.h"

using namespace subscale;

int main() {
  return bench::run(
      "fig08_factors",
      "Fig. 8 — energy and delay factors vs L_poly (45nm device)",
      "energy-optimal L_poly = 60nm; shallow delay minimum",
      "interior energy optimum near 60nm; choosing it costs <10% delay",
      [](bench::Record& rec) {
  const auto& node = scaling::node_by_name("45nm");
  io::Series efac("energy_factor"), dfac("delay_factor");
  io::TextTable t({"Lpoly [nm]", "CL*SS^2 (norm)", "CL*SS/Ioff (norm)"});

  double e_min = 1e300, d_min = 1e300, e_argmin = 0.0, d_argmin = 0.0;
  std::vector<std::pair<double, std::pair<double, double>>> rows;
  for (double lpoly = 34.0; lpoly <= 100.0; lpoly += 6.0) {
    const auto spec = scaling::optimize_subvth_doping(
        node, lpoly, {}, bench::study().calibration());
    const double e = scaling::energy_factor(spec, bench::study().calibration());
    const double d = scaling::delay_factor(spec, bench::study().calibration());
    rows.push_back({lpoly, {e, d}});
    if (e < e_min) {
      e_min = e;
      e_argmin = lpoly;
    }
    if (d < d_min) {
      d_min = d;
      d_argmin = lpoly;
    }
  }
  for (const auto& [lpoly, ed] : rows) {
    efac.add(lpoly, ed.first / e_min);
    dfac.add(lpoly, ed.second / d_min);
    t.add_row({io::fmt(lpoly, 3), io::fmt(ed.first / e_min, 4),
               io::fmt(ed.second / d_min, 4)});
  }
  std::printf("%s\n", t.render(2).c_str());
  std::printf("energy-optimal Lpoly = %.0f nm (paper: 60 nm)\n", e_argmin);
  std::printf("delay-optimal  Lpoly = %.0f nm (shallow minimum)\n", d_argmin);

  // Shape: interior minima (not at either end of the sweep); energy
  // optimum within 20 % of the paper's 60 nm; delay minimum shallow
  // (< 10 % above its floor at the energy-optimal length).
  const bool interior =
      e_argmin > rows.front().first && e_argmin < rows.back().first;
  const bool near_paper = std::abs(e_argmin / 60.0 - 1.0) < 0.20;
  double d_at_eopt = 0.0;
  for (const auto& [lpoly, ed] : rows) {
    if (lpoly == e_argmin) d_at_eopt = ed.second;
  }
  const bool shallow = d_at_eopt / d_min < 1.10;

  rec.metric("energy_optimal_lpoly_nm", e_argmin);
  rec.metric("delay_cost_at_eopt", d_at_eopt / d_min);
  return interior && near_paper && shallow;
      });
}
