// Extension bench for the multi-process study orchestrator (src/orch):
// run the same sharded study three ways against fresh caches —
//   1. one worker process (the multi-process baseline),
//   2. four worker processes (the throughput configuration),
//   3. four workers with a deterministic chaos kill (one worker
//      SIGKILLed mid-unit, orchestrator reassigns and respawns) —
// and a serial in-process reference, then check the orchestration
// contract: every merged output is bitwise-identical to the serial
// reference, the chaos run recovers every unit (nothing poisoned), and
// at >= 4 hardware threads the 4-worker run beats the 1-worker run.
// Records wall times, the speedup, units reassigned, and the bitwise
// flags in BENCH_ext_orch_study.json.

#include <filesystem>
#include <string>
#include <thread>

#include <unistd.h>

#include "common.h"
#include "orch/orchestrator.h"

using namespace subscale;

namespace {

struct TimedRun {
  orch::StudyResult result;
  double wall_ms = 0.0;
};

TimedRun timed_study(const orch::Manifest& manifest,
                     const orch::OrchOptions& options) {
  TimedRun run;
  const auto start = std::chrono::steady_clock::now();
  run.result = orch::run_study(manifest, options);
  run.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return run;
}

}  // namespace

int main() {
  return bench::run(
      "ext_orch_study",
      "Extension — crash-tolerant multi-process study orchestrator",
      "a sharded study should survive worker deaths without losing or "
      "corrupting a unit, and merge bitwise-identically to a serial run",
      "all merges bitwise == serial reference; chaos run recovers every "
      "unit; 4-worker beats 1-worker at >= 4 hw threads",
      [](bench::Record& record) {
        namespace fs = std::filesystem;
        const std::string root =
            "orch_bench_tmp_" +
            std::to_string(static_cast<long>(::getpid()));
        fs::remove_all(root);

        orch::StudySpec spec;
        spec.points = 4;
        spec.mesh.surface_spacing = 0.6e-9;  // coarse: orchestration is
        spec.mesh.junction_spacing = 1.5e-9; // under test, not physics
        const orch::Manifest manifest = orch::build_manifest(spec);
        std::printf("study: %zu units (supervth x 4 nodes, %zu-point "
                    "sweeps, coarse mesh)\n\n",
                    manifest.units.size(), spec.points);

        const auto options_for = [&](const char* tag, std::size_t workers) {
          orch::OrchOptions o;
          o.workers = workers;
          o.study_dir = root + "/study_" + tag;
          o.cache_dir = root + "/cache_" + tag;
          o.lease_timeout_seconds = 1.0;
          o.run.metrics = bench::detail::bench_registry();
          return o;
        };

        const TimedRun serial = timed_study(manifest, options_for("s", 0));
        const std::string reference = serial.result.json();
        const TimedRun one = timed_study(manifest, options_for("w1", 1));
        const TimedRun four = timed_study(manifest, options_for("w4", 4));

        orch::OrchOptions chaos_options = options_for("chaos", 4);
        chaos_options.chaos.kill_after_units = 1;  // every initial worker
        chaos_options.chaos.seed = 42;             // dies mid-first-unit
        const TimedRun chaos = timed_study(manifest, chaos_options);

        const bool one_bitwise = one.result.json() == reference;
        const bool four_bitwise = four.result.json() == reference;
        const bool chaos_bitwise = chaos.result.json() == reference;
        const bool chaos_recovered = chaos.result.complete() &&
                                     chaos.result.report.poisoned == 0;
        const double speedup =
            four.wall_ms > 0 ? one.wall_ms / four.wall_ms : 0.0;

        std::printf("serial reference   %8.1f ms\n", serial.wall_ms);
        std::printf("1 worker           %8.1f ms  bitwise=%s\n",
                    one.wall_ms, one_bitwise ? "yes" : "NO");
        std::printf("4 workers          %8.1f ms  bitwise=%s  "
                    "speedup=%.2fx\n",
                    four.wall_ms, four_bitwise ? "yes" : "NO", speedup);
        std::printf("4 workers + chaos  %8.1f ms  bitwise=%s  "
                    "reassigned=%zu restarts=%zu poisoned=%zu\n\n",
                    chaos.wall_ms, chaos_bitwise ? "yes" : "NO",
                    chaos.result.report.reassigned,
                    chaos.result.report.worker_restarts,
                    chaos.result.report.poisoned);

        record.metric("serial_ms", serial.wall_ms);
        record.metric("one_worker_ms", one.wall_ms);
        record.metric("four_worker_ms", four.wall_ms);
        record.metric("chaos_ms", chaos.wall_ms);
        record.metric("speedup_4v1", speedup);
        record.metric("chaos_reassigned",
                      static_cast<double>(chaos.result.report.reassigned));
        record.metric("chaos_restarts",
                      static_cast<double>(
                          chaos.result.report.worker_restarts));
        record.metric("bitwise_one", one_bitwise ? 1.0 : 0.0);
        record.metric("bitwise_four", four_bitwise ? 1.0 : 0.0);
        record.metric("bitwise_chaos", chaos_bitwise ? 1.0 : 0.0);

        fs::remove_all(root);

        bool ok = one_bitwise && four_bitwise && chaos_bitwise &&
                  chaos_recovered && chaos.result.report.reassigned > 0;
        // The throughput gate binds only where the hardware can actually
        // parallelize (same policy as bench_ext_parallel_study).
        if (std::thread::hardware_concurrency() >= 4) {
          ok = ok && speedup > 1.2;
        }
        return ok;
      });
}
