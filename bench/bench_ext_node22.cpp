// Extension bench: continue both scaling strategies ONE GENERATION past
// the paper (a 22nm-class node, generation 4) using the same rules —
// L_poly -30 %, T_ox -10 %, leakage cap +25 % for super-V_th; energy-
// optimal L_poly at fixed 100 pA/um for sub-V_th. The paper's conclusion
// ("sub-V_th circuits may be able to reliably scale deep into the
// nanometer regime" with the proposed strategy) predicts the gap between
// the strategies keeps widening.

#include "common.h"
#include "circuits/vtc.h"
#include "scaling/subvth_strategy.h"
#include "scaling/supervth_strategy.h"

using namespace subscale;

int main() {
  return bench::run(
      "ext_node22",
      "Extension — extrapolating both strategies to 22nm (gen 4)",
      "the S_S / SNM gap between strategies keeps widening past the "
      "paper's range",
      "super-V_th keeps degrading at 22nm while the sub-V_th plateau "
      "holds; the advantage widens",
      [](bench::Record& rec) {
  const auto node22 = scaling::extrapolate_node(4);
  const auto sup32 = bench::study().super_devices()[3];
  const auto sub32 = bench::study().sub_devices()[3];
  const auto sup22 = scaling::design_supervth_device(node22);
  const auto sub22 = scaling::design_subvth_device(node22);

  io::TextTable t({"node", "strategy", "Lpoly [nm]", "SS [mV/dec]",
                   "SNM@250mV [mV]"});
  const auto snm_of = [](const compact::DeviceSpec& spec) {
    return circuits::noise_margins(circuits::make_inverter(spec).at_vdd(0.25))
               .snm *
           1e3;
  };
  const double snm_sup32 = snm_of(sup32.spec);
  const double snm_sub32 = snm_of(sub32.device.spec);
  const double snm_sup22 = snm_of(sup22.spec);
  const double snm_sub22 = snm_of(sub22.device.spec);

  t.add_row({"32nm", "super", io::fmt(sup32.node.lpoly_nm, 3),
             io::fmt(sup32.ss_mv_dec, 4), io::fmt(snm_sup32, 4)});
  t.add_row({"32nm", "sub", io::fmt(sub32.lpoly_opt_nm, 3),
             io::fmt(sub32.device.ss_mv_dec, 4), io::fmt(snm_sub32, 4)});
  t.add_row({"22nm", "super", io::fmt(sup22.node.lpoly_nm, 3),
             io::fmt(sup22.ss_mv_dec, 4), io::fmt(snm_sup22, 4)});
  t.add_row({"22nm", "sub", io::fmt(sub22.lpoly_opt_nm, 3),
             io::fmt(sub22.device.ss_mv_dec, 4), io::fmt(snm_sub22, 4)});
  std::printf("%s\n", t.render(2).c_str());

  const double gap32 = snm_sub32 / snm_sup32 - 1.0;
  const double gap22 = snm_sub22 / snm_sup22 - 1.0;
  std::printf("SNM advantage: %.1f%% at 32nm -> %.1f%% at 22nm\n",
              gap32 * 100.0, gap22 * 100.0);
  std::printf("sub-V_th S_S at 22nm: %.1f mV/dec (plateau holds: %s)\n",
              sub22.device.ss_mv_dec,
              std::abs(sub22.device.ss_mv_dec - 80.0) < 5.0 ? "yes" : "no");

  rec.metric("snm_gap_32nm_pct", gap32 * 100.0);
  rec.metric("snm_gap_22nm_pct", gap22 * 100.0);
  rec.metric("ss_sub_22nm_mv_dec", sub22.device.ss_mv_dec);
  return gap22 > gap32 && sup22.ss_mv_dec > sup32.ss_mv_dec &&
         std::abs(sub22.device.ss_mv_dec - 80.0) < 5.0;
      });
}
