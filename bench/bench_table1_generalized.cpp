// Reproduction of Table 1: generalized scaling factors (Baccarani et
// al., the paper's ref [8]) for a representative alpha = 1/0.7 and the
// constant-field special case epsilon = 1.

#include "common.h"
#include "scaling/generalized_scaling.h"

using namespace subscale;

int main() {
  return bench::run(
      "table1_generalized", "Table 1 — generalized scaling",
      "dimensions 1/a, doping ea, Vdd e/a, area 1/a^2, delay 1/a, "
      "power e^2/a^2",
      "constant-field limit identities hold",
      [](bench::Record& rec) {
  const double alpha = 1.0 / 0.7;  // the 30 %/generation shrink
  for (const double eps : {1.0, 1.1}) {
    const auto f = scaling::generalized_scaling(alpha, eps);
    std::printf("alpha = %.4f, epsilon = %.2f\n", alpha, eps);
    io::TextTable t({"parameter", "factor (formula)", "value"});
    t.add_row({"physical dimensions", "1/alpha", io::fmt(f.physical_dimensions)});
    t.add_row({"N_ch", "eps*alpha", io::fmt(f.channel_doping)});
    t.add_row({"V_dd", "eps/alpha", io::fmt(f.supply_voltage)});
    t.add_row({"area", "1/alpha^2", io::fmt(f.area)});
    t.add_row({"delay", "1/alpha", io::fmt(f.delay)});
    t.add_row({"power", "eps^2/alpha^2", io::fmt(f.power)});
    std::printf("%s\n", t.render(2).c_str());
  }

  // Shape check: Dennard limit recovers the textbook identities.
  const auto d = scaling::generalized_scaling(alpha, 1.0);
  rec.metric("alpha", alpha);
  rec.metric("dennard_delay_factor", d.delay);
  return d.power == d.area && d.delay == d.physical_dimensions &&
         d.supply_voltage == d.physical_dimensions;
      });
}
