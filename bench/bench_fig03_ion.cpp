// Reproduction of Fig. 3: NFET on-current at nominal V_dd and at
// V_dd = 250 mV across the super-V_th roadmap. Paper: under the
// leakage-constrained scaling scenario I_on REDUCES between generations,
// and the reduction is more dramatic in the subthreshold regime.

#include "common.h"
#include "compact/mosfet.h"
#include "physics/units.h"

using namespace subscale;

int main() {
  return bench::run(
      "fig03_ion",
      "Fig. 3 — NFET I_on at nominal V_dd and at 250 mV, super-V_th",
      "I_on falls with scaling; the sub-V_th (250 mV) current falls faster",
      "both currents fall; the 250 mV current falls faster",
      [](bench::Record& rec) {
  io::Series nominal("ion_nominal"), sub("ion_250mV");
  io::TextTable t({"node", "Vdd[V]", "Ion(Vdd) [uA/um]", "Ion(0.25) [nA/um]"});
  const auto& devices = bench::study().super_devices();
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const compact::CompactMosfet fet(devices[i].spec,
                                     bench::study().calibration());
    const double w = devices[i].spec.width;
    nominal.add(bench::node_nm(i), fet.ion() / w);
    sub.add(bench::node_nm(i), fet.ion_at(0.25) / w);
    t.add_row({devices[i].node.name, io::fmt(devices[i].node.vdd, 2),
               io::fmt(units::to_uA_per_um(fet.ion() / w), 4),
               io::fmt(fet.ion_at(0.25) / w * 1e3, 4)});
  }
  std::printf("%s\n", t.render(2).c_str());

  const auto nom_n = nominal.normalized_to_first();
  const auto sub_n = sub.normalized_to_first();
  std::printf("normalized to 90nm:\n");
  for (std::size_t i = 0; i < 4; ++i) {
    std::printf("  %4.0fnm nominal %.3f  sub-Vth %.3f\n", bench::node_nm(i),
                nom_n[i].y, sub_n[i].y);
  }

  const bool nominal_falls = nominal.total_relative_change() < 0.0;
  const bool sub_falls_faster =
      sub_n.points().back().y < nom_n.points().back().y;
  rec.metric("ion_nominal_32nm_norm", nom_n[3].y);
  rec.metric("ion_250mV_32nm_norm", sub_n[3].y);
  return nominal_falls && sub_falls_faster;
      });
}
